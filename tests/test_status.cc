/**
 * @file
 * Tests for the recoverable-error layer: Status/Expected, CS_TRY
 * propagation, strict numeric parsing, the trace checksum, and the
 * configuration/factory validation paths built on top of them.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/cascade_lake.hh"
#include "harness/workload_zoo.hh"
#include "prefetch/prefetcher.hh"
#include "replacement/replacement_policy.hh"
#include "util/checksum.hh"
#include "util/parse.hh"
#include "util/status.hh"

namespace cachescope {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, ConstructorsFormatAndClassify)
{
    Status s = ioError("cannot open '%s' (%d)", "x.trace", 7);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::IoError);
    EXPECT_EQ(s.message(), "cannot open 'x.trace' (7)");
    EXPECT_EQ(s.toString(), "io_error: cannot open 'x.trace' (7)");

    EXPECT_EQ(notFoundError("x").code(), StatusCode::NotFound);
    EXPECT_EQ(invalidArgumentError("x").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(corruptionError("x").code(), StatusCode::Corruption);
    EXPECT_EQ(internalError("x").code(), StatusCode::Internal);
}

TEST(Expected, HoldsValueOrStatus)
{
    Expected<int> good(41);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 41);
    EXPECT_EQ(*good + 1, 42);

    Expected<int> bad(notFoundError("no such number"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
}

Status
failsWhenNegative(int x)
{
    if (x < 0)
        return invalidArgumentError("negative: %d", x);
    return Status();
}

Status
propagates(int x, bool *reached_end)
{
    CS_TRY(failsWhenNegative(x));
    *reached_end = true;
    return Status();
}

TEST(Expected, CsTryPropagatesErrors)
{
    bool reached = false;
    EXPECT_TRUE(propagates(1, &reached).ok());
    EXPECT_TRUE(reached);

    reached = false;
    Status s = propagates(-3, &reached);
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(reached);
    EXPECT_EQ(s.message(), "negative: -3");
}

Expected<int>
half(int x)
{
    if (x % 2 != 0)
        return invalidArgumentError("%d is odd", x);
    return x / 2;
}

Status
quarter(int x, int *out)
{
    CS_TRY_ASSIGN(const int h, half(x));
    CS_TRY_ASSIGN(*out, half(h));
    return Status();
}

TEST(Expected, CsTryAssignUnwrapsOrPropagates)
{
    int out = 0;
    EXPECT_TRUE(quarter(8, &out).ok());
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(quarter(6, &out).ok()); // 6/2 = 3 is odd
    EXPECT_FALSE(quarter(7, &out).ok());
}

TEST(ParseU64, AcceptsPlainIntegers)
{
    EXPECT_EQ(parseU64("0").value(), 0u);
    EXPECT_EQ(parseU64("5000000").value(), 5'000'000u);
    EXPECT_EQ(parseU64("18446744073709551615").value(),
              18446744073709551615ull);
}

TEST(ParseU64, RejectsGarbage)
{
    EXPECT_FALSE(parseU64("").ok());
    EXPECT_FALSE(parseU64("abc").ok());
    EXPECT_FALSE(parseU64("12abc").ok());   // trailing garbage
    EXPECT_FALSE(parseU64("5OOOOOO").ok()); // the classic typo
    EXPECT_FALSE(parseU64("-1").ok());
    EXPECT_FALSE(parseU64(" 7").ok());
    EXPECT_FALSE(parseU64("7 ").ok());
    EXPECT_FALSE(parseU64("1.5").ok());
    EXPECT_FALSE(parseU64("18446744073709551616").ok()); // 2^64
}

TEST(ParseF64NonNegative, AcceptsPlainAndFractionalSeconds)
{
    EXPECT_DOUBLE_EQ(parseF64NonNegative("0").value(), 0.0);
    EXPECT_DOUBLE_EQ(parseF64NonNegative("2").value(), 2.0);
    EXPECT_DOUBLE_EQ(parseF64NonNegative("0.5").value(), 0.5);
    EXPECT_DOUBLE_EQ(parseF64NonNegative("1.25").value(), 1.25);
    EXPECT_DOUBLE_EQ(parseF64NonNegative("1e3").value(), 1000.0);
    EXPECT_DOUBLE_EQ(parseF64NonNegative("2.5E-1").value(), 0.25);
}

TEST(ParseF64NonNegative, RejectsGarbage)
{
    EXPECT_FALSE(parseF64NonNegative("").ok());
    EXPECT_FALSE(parseF64NonNegative("abc").ok());
    EXPECT_FALSE(parseF64NonNegative("1.5s").ok()); // trailing unit
    EXPECT_FALSE(parseF64NonNegative("-1").ok());   // negative
    EXPECT_FALSE(parseF64NonNegative("-0.5").ok());
    EXPECT_FALSE(parseF64NonNegative("+1").ok());   // signs disallowed
    EXPECT_FALSE(parseF64NonNegative(" 1").ok());
    EXPECT_FALSE(parseF64NonNegative("1 ").ok());
    EXPECT_FALSE(parseF64NonNegative("1..5").ok());
    EXPECT_FALSE(parseF64NonNegative(".5").ok());   // must start digit
    EXPECT_FALSE(parseF64NonNegative("inf").ok());
    EXPECT_FALSE(parseF64NonNegative("nan").ok());
    EXPECT_FALSE(parseF64NonNegative("0x1p3").ok()); // hex floats
    EXPECT_FALSE(parseF64NonNegative("1e999").ok()); // overflow
}

TEST(Checksum64, DeterministicAndBitSensitive)
{
    const char data[] = "the quick brown fox";
    Checksum64 a, b;
    a.update(data, sizeof(data));
    b.update(data, sizeof(data));
    EXPECT_EQ(a.digest(), b.digest());

    // Streaming in two chunks matches one-shot hashing.
    Checksum64 c;
    c.update(data, 5);
    c.update(data + 5, sizeof(data) - 5);
    EXPECT_EQ(c.digest(), a.digest());

    char flipped[sizeof(data)];
    std::memcpy(flipped, data, sizeof(data));
    flipped[7] ^= 0x01;
    Checksum64 d;
    d.update(flipped, sizeof(flipped));
    EXPECT_NE(d.digest(), a.digest());

    d.reset();
    d.update(data, sizeof(data));
    EXPECT_EQ(d.digest(), a.digest());
}

// ------------------------------------------------- config validation --

TEST(SimConfigValidate, AcceptsThePaperConfiguration)
{
    const SimConfig cfg = cascadeLakeConfig("hawkeye", 1000, 10'000);
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SimConfigValidate, RejectsUnknownPolicy)
{
    SimConfig cfg = cascadeLakeConfig("lru", 1000, 10'000);
    cfg.hierarchy.llc.replacement = "quantum_lru";
    const Status s = cfg.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::NotFound);
    EXPECT_NE(s.message().find("quantum_lru"), std::string::npos);
}

TEST(SimConfigValidate, RejectsZeroWays)
{
    SimConfig cfg = cascadeLakeConfig("lru", 1000, 10'000);
    cfg.hierarchy.l2.numWays = 0;
    const Status s = cfg.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
}

TEST(SimConfigValidate, RejectsNonPowerOfTwoGeometry)
{
    SimConfig cfg = cascadeLakeConfig("lru", 1000, 10'000);
    // 48 KB / 64 B / 8 ways = 96 sets: not a power of two.
    cfg.hierarchy.l1d.sizeBytes = 48 * 1024;
    cfg.hierarchy.l1d.numWays = 8;
    const Status s = cfg.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("power of two"), std::string::npos);
}

TEST(SimConfigValidate, RejectsNonPowerOfTwoBlockSize)
{
    SimConfig cfg = cascadeLakeConfig("lru", 1000, 10'000);
    cfg.hierarchy.llc.blockBytes = 48;
    EXPECT_FALSE(cfg.validate().ok());
}

TEST(SimConfigValidate, RejectsUnknownPrefetcher)
{
    SimConfig cfg = cascadeLakeConfig("lru", 1000, 10'000);
    cfg.hierarchy.l2.prefetcher = "warp_drive";
    const Status s = cfg.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("warp_drive"), std::string::npos);
}

// ------------------------------------------------- factory try-paths --

TEST(TryFactories, PolicyLookupReportsUnknownNames)
{
    const CacheGeometry geom{64, 8, 64};
    auto known = ReplacementPolicyFactory::tryCreate("lru", geom);
    ASSERT_TRUE(known.ok());
    EXPECT_NE(known.value(), nullptr);
    EXPECT_EQ(known.value()->name(), "lru");

    auto unknown = ReplacementPolicyFactory::tryCreate("nope", geom);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::NotFound);

    auto empty = ReplacementPolicyFactory::tryCreate(
        "lru", CacheGeometry{0, 0, 64});
    EXPECT_FALSE(empty.ok());
}

TEST(TryFactories, PrefetcherLookup)
{
    EXPECT_TRUE(tryMakePrefetcher("none").ok());
    EXPECT_EQ(tryMakePrefetcher("none").value(), nullptr);
    EXPECT_TRUE(tryMakePrefetcher("stride").ok());
    EXPECT_FALSE(tryMakePrefetcher("warp_drive").ok());

    EXPECT_TRUE(isKnownPrefetcher(""));
    EXPECT_TRUE(isKnownPrefetcher("none"));
    EXPECT_TRUE(isKnownPrefetcher("streamer"));
    EXPECT_FALSE(isKnownPrefetcher("warp_drive"));
}

TEST(TryFactories, WorkloadZooLookup)
{
    ZooOptions options;
    options.synthMainBytes = 64 * 1024;
    auto known = tryMakeNamedWorkload("small_ws", options);
    ASSERT_TRUE(known.ok());
    EXPECT_NE(known.value(), nullptr);

    auto unknown = tryMakeNamedWorkload("quicksort", options);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), StatusCode::NotFound);
    EXPECT_NE(unknown.status().message().find("quicksort"),
              std::string::npos);

    EXPECT_FALSE(tryMakeNamedSuite("spec2038").ok());
    EXPECT_TRUE(tryMakeNamedSuite("spec06").ok());
}

} // namespace
} // namespace cachescope
