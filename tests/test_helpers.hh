/**
 * @file
 * Shared fixtures and fakes for the CacheScope test suite.
 */

#ifndef CACHESCOPE_TESTS_TEST_HELPERS_HH
#define CACHESCOPE_TESTS_TEST_HELPERS_HH

#include <cstdint>
#include <vector>

#include "core/cache.hh"
#include "trace/record.hh"

namespace cachescope::test {

/** A MemoryLevel that records every access and replies instantly. */
class RecordingLevel : public MemoryLevel
{
  public:
    struct Access
    {
        Addr addr;
        Pc pc;
        AccessType type;
        Cycle at;
    };

    explicit RecordingLevel(Cycle latency = 100) : latency(latency) {}

    Cycle
    access(Addr addr, Pc pc, AccessType type, Cycle now) override
    {
        accesses.push_back({addr, pc, type, now});
        return now + latency;
    }

    const std::string &levelName() const override { return name; }

    std::size_t
    countOf(AccessType type) const
    {
        std::size_t n = 0;
        for (const auto &a : accesses)
            if (a.type == type)
                ++n;
        return n;
    }

    std::vector<Access> accesses;
    Cycle latency;

  private:
    std::string name = "recorder";
};

/**
 * A scripted replacement policy: returns victims from a fixed sequence
 * (kBypassWay entries trigger bypass) and logs updates.
 */
class ScriptedPolicy : public ReplacementPolicy
{
  public:
    struct Update
    {
        std::uint32_t set;
        std::uint32_t way;
        Pc pc;
        Addr block;
        AccessType type;
        bool hit;
    };

    explicit ScriptedPolicy(const CacheGeometry &geometry)
        : ReplacementPolicy(geometry)
    {}

    std::uint32_t
    findVictim(std::uint32_t, Pc, Addr, AccessType) override
    {
        if (cursor < script.size())
            return script[cursor++];
        return 0;
    }

    void
    update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block,
           AccessType type, bool hit) override
    {
        updates.push_back({set, way, pc, block, type, hit});
    }

    std::vector<std::uint32_t> script;
    std::size_t cursor = 0;
    std::vector<Update> updates;
};

/** A sink that stores all records (for stream-equality assertions). */
class VectorSink : public InstructionSink
{
  public:
    void
    onInstruction(const TraceRecord &rec) override
    {
        records.push_back(rec);
    }

    std::vector<TraceRecord> records;
};

/** A sink that accepts a bounded number of records, then refuses. */
class BoundedSink : public InstructionSink
{
  public:
    explicit BoundedSink(std::uint64_t budget) : budget(budget) {}

    void
    onInstruction(const TraceRecord &rec) override
    {
        if (consumed < budget) {
            ++consumed;
            lastRecord = rec;
        } else {
            ++overflow;
        }
    }

    bool wantsMore() const override { return consumed < budget; }

    std::uint64_t budget;
    std::uint64_t consumed = 0;
    std::uint64_t overflow = 0;
    TraceRecord lastRecord;
};

/** FNV-1a hash of a record stream, for cheap determinism checks. */
class HashingSink : public InstructionSink
{
  public:
    void
    onInstruction(const TraceRecord &rec) override
    {
        auto mix = [this](std::uint64_t v) {
            hash ^= v;
            hash *= 0x100000001B3ull;
        };
        mix(rec.pc);
        mix(rec.addr);
        mix(static_cast<std::uint64_t>(rec.kind));
        mix(rec.size);
        ++count;
    }

    std::uint64_t hash = 0xCBF29CE484222325ull;
    std::uint64_t count = 0;
};

/** @return a small cache geometry for policy unit tests. */
inline CacheGeometry
smallGeometry(std::uint32_t sets = 4, std::uint32_t ways = 4)
{
    return CacheGeometry{sets, ways, 64};
}

/** @return a CacheConfig with the given shape and LRU replacement. */
inline CacheConfig
smallCacheConfig(const char *name, std::uint64_t size_bytes,
                 std::uint32_t ways, Cycle latency = 1,
                 const char *policy = "lru")
{
    CacheConfig cfg;
    cfg.name = name;
    cfg.sizeBytes = size_bytes;
    cfg.numWays = ways;
    cfg.blockBytes = 64;
    cfg.hitLatency = latency;
    cfg.replacement = policy;
    return cfg;
}

} // namespace cachescope::test

#endif // CACHESCOPE_TESTS_TEST_HELPERS_HH
