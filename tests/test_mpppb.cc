/**
 * @file
 * Unit tests for MPPPB: feature hashing, sampler-driven training,
 * placement tiers, promotion and bypass.
 */

#include <gtest/gtest.h>

#include "replacement/mpppb.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Mpppb, InitialPredictionIsZero)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    EXPECT_EQ(mpppb.predictionSum(0x400000, 0x1000), 0);
}

TEST(Mpppb, ZeroSumInsertsMidStack)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    mpppb.update(1, 0, 0x400000, 0x1000, AccessType::Load, false);
    // An untrained sum of 0 is neither confidently live (< promote
    // threshold) nor dead (>= distant threshold): SRRIP-like insertion.
    EXPECT_EQ(mpppb.rrpvOf(1, 0), MpppbPolicy::kMaxRrpv - 1);
}

TEST(Mpppb, SampledSetsMatchTarget)
{
    MpppbPolicy mpppb({2048, 11, 64});
    int sampled = 0;
    for (std::uint32_t s = 0; s < 2048; ++s)
        sampled += mpppb.isSampledSet(s);
    EXPECT_EQ(sampled, 64);
}

TEST(Mpppb, DeadStreamTrainsTowardBypass)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    const Pc pc = 0x400040;
    // A long never-reused stream through a sampled set: sampler evicts
    // untouched entries, driving weights positive ("dead").
    for (int i = 0; i < 4000; ++i) {
        mpppb.update(0, static_cast<std::uint32_t>(i % 4), pc,
                     0x100000 + static_cast<Addr>(i) * 64,
                     AccessType::Load, false);
    }
    EXPECT_GE(mpppb.predictionSum(pc, 0x100000 + 4000 * 64),
              MpppbPolicy::kDistantThreshold);
}

TEST(Mpppb, BypassFiresForConfidentlyDeadFills)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    const Pc pc = 0x400080;
    for (int i = 0; i < 20000; ++i) {
        mpppb.update(0, static_cast<std::uint32_t>(i % 4), pc,
                     0x100000 + static_cast<Addr>(i) * 64,
                     AccessType::Load, false);
    }
    const Addr next_block = 0x100000 + 20000ull * 64;
    ASSERT_GE(mpppb.predictionSum(pc, next_block),
              MpppbPolicy::kBypassThreshold);
    EXPECT_EQ(mpppb.findVictim(0, pc, next_block, AccessType::Load),
              ReplacementPolicy::kBypassWay);
    EXPECT_GE(mpppb.bypassCount(), 1u);
}

TEST(Mpppb, WritebacksAreNeverBypassed)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    const Pc pc = 0x4000C0;
    for (int i = 0; i < 20000; ++i) {
        mpppb.update(0, static_cast<std::uint32_t>(i % 4), pc,
                     0x100000 + static_cast<Addr>(i) * 64,
                     AccessType::Load, false);
    }
    const std::uint32_t v =
        mpppb.findVictim(0, pc, 0x200000, AccessType::Writeback);
    EXPECT_NE(v, ReplacementPolicy::kBypassWay);
    EXPECT_LT(v, 4u);
}

TEST(Mpppb, ReuseTrainsTowardCaching)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    const Pc pc = 0x400100;
    // Small reusing set in a sampled set: sampler hits train "live".
    for (int i = 0; i < 2000; ++i) {
        mpppb.update(0, static_cast<std::uint32_t>(i % 4), pc,
                     0x300000 + static_cast<Addr>(i % 8) * 64,
                     AccessType::Load, i >= 8);
    }
    EXPECT_LT(mpppb.predictionSum(pc, 0x300000),
              MpppbPolicy::kPromoteThreshold);
    // Reusing fills insert at MRU.
    mpppb.update(1, 0, pc, 0x300000, AccessType::Load, false);
    EXPECT_EQ(mpppb.rrpvOf(1, 0), 0);
}

TEST(Mpppb, HitPromotionDependsOnPrediction)
{
    // 128 sets -> sample stride 2 -> set 1 is unsampled, so these
    // accesses cause no training and the sum stays 0.
    MpppbPolicy mpppb(smallGeometry(128, 4));
    ASSERT_FALSE(mpppb.isSampledSet(1));
    const Pc pc = 0x400140;
    for (std::uint32_t w = 0; w < 4; ++w) {
        mpppb.update(1, w, pc, 0x5000 + 64 * w, AccessType::Load,
                     false); // all insert at rrpv 0 (sum 0 -> MRU)
    }
    // One victim scan ages the full set up to the distant level.
    mpppb.findVictim(1, pc, 0x6000, AccessType::Load);
    ASSERT_EQ(mpppb.rrpvOf(1, 0), MpppbPolicy::kMaxRrpv);
    // An untrained hit (sum 0, not < kPromoteThreshold) gets the
    // conservative halving rather than full MRU promotion.
    mpppb.update(1, 0, pc, 0x5000, AccessType::Load, true);
    EXPECT_EQ(mpppb.rrpvOf(1, 0), MpppbPolicy::kMaxRrpv / 2);
}

TEST(Mpppb, FeatureSumIsDeterministic)
{
    MpppbPolicy a(smallGeometry(64, 4)), b(smallGeometry(64, 4));
    for (int i = 0; i < 100; ++i) {
        const Pc pc = 0x400000 + 4 * i;
        const Addr block = 0x1000 * i;
        a.update(0, static_cast<std::uint32_t>(i % 4), pc, block,
                 AccessType::Load, i % 2 == 0);
        b.update(0, static_cast<std::uint32_t>(i % 4), pc, block,
                 AccessType::Load, i % 2 == 0);
        EXPECT_EQ(a.predictionSum(pc, block), b.predictionSum(pc, block));
    }
}

TEST(Mpppb, WritebackPlacementIsDistantButPresent)
{
    MpppbPolicy mpppb(smallGeometry(64, 4));
    mpppb.update(1, 2, 0, 0x8000, AccessType::Writeback, false);
    EXPECT_EQ(mpppb.rrpvOf(1, 2), MpppbPolicy::kMaxRrpv - 1);
}

} // namespace
} // namespace cachescope
