/**
 * @file
 * Unit tests for the cache model: geometry validation, hit/miss paths,
 * writebacks, bypass, hooks, and timing composition.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/cache.hh"
#include "replacement/replacement_policy.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::RecordingLevel;
using test::ScriptedPolicy;
using test::smallCacheConfig;

TEST(CacheConfigTest, DerivesSets)
{
    // 8 KB, 4-way, 64 B blocks -> 32 sets.
    const CacheConfig cfg = smallCacheConfig("t", 8 * 1024, 4);
    EXPECT_EQ(cfg.numSets(), 32u);
    const CacheGeometry g = cfg.geometry();
    EXPECT_EQ(g.numWays, 4u);
    EXPECT_EQ(g.sizeBytes(), 8u * 1024);
}

TEST(CacheConfigTest, CascadeLakeLlcShape)
{
    // 1.375 MB 11-way: 2048 sets — the non-power-of-two associativity
    // case the whole framework must support.
    CacheConfig cfg = smallCacheConfig("llc", 11 * 128 * 1024, 11);
    EXPECT_EQ(cfg.numSets(), 2048u);
}

TEST(CacheConfigDeathTest, RejectsBadShapes)
{
    CacheConfig cfg = smallCacheConfig("bad", 1000, 4);
    EXPECT_EXIT(cfg.numSets(), ::testing::ExitedWithCode(1), "");
    CacheConfig zero_ways = smallCacheConfig("bad2", 8192, 0);
    EXPECT_EXIT(zero_ways.numSets(), ::testing::ExitedWithCode(1), "");
}

struct CacheFixture : public ::testing::Test
{
    CacheFixture()
        : below(100),
          cache(smallCacheConfig("L", 4 * 1024, 4, 2), &below)
    {}

    RecordingLevel below;
    Cache cache; // 16 sets, 4 ways
};

TEST_F(CacheFixture, MissThenHit)
{
    const Cycle t1 = cache.access(0x1000, 7, AccessType::Load, 0);
    EXPECT_EQ(cache.stats().missesOf(AccessType::Load), 1u);
    EXPECT_EQ(below.accesses.size(), 1u);
    // Miss latency = own lookup (2) + below (100).
    EXPECT_EQ(t1, 102u);

    const Cycle t2 = cache.access(0x1000, 7, AccessType::Load, 200);
    EXPECT_EQ(cache.stats().hitsOf(AccessType::Load), 1u);
    EXPECT_EQ(below.accesses.size(), 1u); // no new fetch
    EXPECT_EQ(t2, 202u);
}

TEST_F(CacheFixture, SameBlockDifferentOffsetHits)
{
    cache.access(0x1000, 7, AccessType::Load, 0);
    cache.access(0x103F, 7, AccessType::Load, 0);
    EXPECT_EQ(cache.stats().hitsOf(AccessType::Load), 1u);
    EXPECT_TRUE(cache.contains(0x1020));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST_F(CacheFixture, StoreMakesLineDirtyAndEvictionWritesBack)
{
    // Fill one set (16 sets: addresses with identical set bits).
    // Set index bits are addr[9:6] here; stride 1024 keeps set 0.
    cache.access(0 * 1024, 1, AccessType::Store, 0);
    cache.access(1 * 1024, 1, AccessType::Load, 0);
    cache.access(2 * 1024, 1, AccessType::Load, 0);
    cache.access(3 * 1024, 1, AccessType::Load, 0);
    EXPECT_EQ(below.countOf(AccessType::Writeback), 0u);

    // Fifth block in set 0 evicts the LRU (the dirty store).
    cache.access(4 * 1024, 1, AccessType::Load, 0);
    EXPECT_EQ(below.countOf(AccessType::Writeback), 1u);
    EXPECT_EQ(cache.stats().writebacksIssued, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.contains(0));
}

TEST_F(CacheFixture, CleanEvictionDoesNotWriteBack)
{
    for (int i = 0; i < 5; ++i)
        cache.access(static_cast<Addr>(i) * 1024, 1, AccessType::Load, 0);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(below.countOf(AccessType::Writeback), 0u);
}

TEST_F(CacheFixture, WritebackArrivalAllocatesWithoutFetch)
{
    cache.access(0x5000, 0, AccessType::Writeback, 10);
    EXPECT_EQ(cache.stats().missesOf(AccessType::Writeback), 1u);
    // Writebacks carry data: nothing is fetched from below.
    EXPECT_TRUE(below.accesses.empty());
    EXPECT_TRUE(cache.contains(0x5000));

    // The installed line is dirty: evicting it writes back.
    for (Addr a = 0; a < 4; ++a)
        cache.access(0x5000 + 0x1000 * (a + 1), 1, AccessType::Load, 20);
    EXPECT_EQ(below.countOf(AccessType::Writeback), 1u);
}

TEST_F(CacheFixture, WritebackHitUpdatesDirtyBit)
{
    cache.access(0x2000, 1, AccessType::Load, 0);
    cache.access(0x2000, 0, AccessType::Writeback, 5);
    EXPECT_EQ(cache.stats().hitsOf(AccessType::Writeback), 1u);
    // Evict it: must write back now.
    for (int i = 1; i <= 4; ++i)
        cache.access(0x2000 + static_cast<Addr>(i) * 1024, 1,
                     AccessType::Load, 10);
    EXPECT_EQ(below.countOf(AccessType::Writeback), 1u);
}

TEST_F(CacheFixture, InvalidateAllClearsContentAndStats)
{
    cache.access(0x1000, 1, AccessType::Load, 0);
    cache.invalidateAll();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(cache.stats().demandAccesses(), 0u);
    cache.access(0x1000, 1, AccessType::Load, 0);
    EXPECT_EQ(cache.stats().missesOf(AccessType::Load), 1u);
}

TEST_F(CacheFixture, AccessHookSeesDemandOnly)
{
    std::vector<std::pair<Addr, AccessType>> seen;
    cache.setAccessHook([&seen](Addr block, Pc, AccessType type) {
        seen.emplace_back(block, type);
    });
    cache.access(0x1000, 1, AccessType::Load, 0);
    cache.access(0x1000, 1, AccessType::Store, 0);
    cache.access(0x9000, 0, AccessType::Writeback, 0);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, 0x1000u >> 6);
    EXPECT_EQ(seen[1].second, AccessType::Store);
}

TEST(CacheBypass, PolicyBypassSkipsInstall)
{
    RecordingLevel below(50);
    CacheConfig cfg = smallCacheConfig("B", 1024, 4, 1); // 4 sets
    auto policy = std::make_unique<ScriptedPolicy>(cfg.geometry());
    ScriptedPolicy *raw = policy.get();
    Cache cache(cfg, &below, std::move(policy));

    // Fill set 0 completely (4 ways; stride = 4 sets * 64 B = 256 B).
    for (int i = 0; i < 4; ++i)
        cache.access(static_cast<Addr>(i) * 256, 1, AccessType::Load, 0);
    EXPECT_EQ(raw->updates.size(), 4u);

    // Next miss in set 0: scripted policy says bypass.
    raw->script = {ReplacementPolicy::kBypassWay};
    raw->cursor = 0;
    cache.access(4 * 256, 1, AccessType::Load, 0);
    EXPECT_EQ(cache.stats().bypasses, 1u);
    EXPECT_FALSE(cache.contains(4 * 256));
    // Bypassed fill produced no update() call.
    EXPECT_EQ(raw->updates.size(), 4u);
    // All four original lines are still resident.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.contains(static_cast<Addr>(i) * 256));
}

TEST(CacheVictim, PolicyChoosesAmongFullSet)
{
    RecordingLevel below(50);
    CacheConfig cfg = smallCacheConfig("V", 1024, 4, 1);
    auto policy = std::make_unique<ScriptedPolicy>(cfg.geometry());
    ScriptedPolicy *raw = policy.get();
    Cache cache(cfg, &below, std::move(policy));

    for (int i = 0; i < 4; ++i)
        cache.access(static_cast<Addr>(i) * 256, 1, AccessType::Load, 0);
    raw->script = {2};
    raw->cursor = 0;
    cache.access(4 * 256, 1, AccessType::Load, 0);
    EXPECT_FALSE(cache.contains(2 * 256)); // way 2 held block 2
    EXPECT_TRUE(cache.contains(4 * 256));
}

TEST(CacheInvalidate, RefillReusesTheInvalidatedWayUnderEveryPolicy)
{
    // After invalidating one way of a full set, the next fill must
    // take exactly that way — the invalid-way scan runs before the
    // policy, so no sealed policy may evict a valid line or bypass
    // while the set has a hole.
    for (const std::string &name :
         ReplacementPolicyFactory::availablePolicies()) {
        RecordingLevel below(50);
        // 1024 B / 4 ways -> 4 sets; stride 256 B stays in set 0.
        const CacheConfig cfg =
            smallCacheConfig("I", 1024, 4, 1, name.c_str());
        Cache cache(cfg, &below);

        for (int i = 0; i < 4; ++i) {
            cache.access(static_cast<Addr>(i) * 256, 1,
                         AccessType::Load, 0);
        }
        ASSERT_TRUE(cache.invalidate(1 * 256)) << name;
        EXPECT_FALSE(cache.contains(1 * 256)) << name;
        const std::uint64_t evictions_before = cache.stats().evictions;

        cache.access(4 * 256, 1, AccessType::Load, 0);
        EXPECT_TRUE(cache.contains(4 * 256)) << name;
        // The three surviving lines were never candidates.
        EXPECT_TRUE(cache.contains(0 * 256)) << name;
        EXPECT_TRUE(cache.contains(2 * 256)) << name;
        EXPECT_TRUE(cache.contains(3 * 256)) << name;
        // Filling a hole is not an eviction (and not a bypass).
        EXPECT_EQ(cache.stats().evictions, evictions_before) << name;
        EXPECT_EQ(cache.stats().bypasses, 0u) << name;
    }
}

TEST(CacheTiming, LatencyComposesThroughLevels)
{
    RecordingLevel dram(200);
    Cache l2(smallCacheConfig("L2", 8 * 1024, 8, 10), &dram);
    Cache l1(smallCacheConfig("L1", 1024, 2, 2), &l2);

    // Cold miss: 2 (L1) + 10 (L2) + 200 (below) = 212.
    EXPECT_EQ(l1.access(0x4000, 1, AccessType::Load, 0), 212u);
    // L1 hit: 2.
    EXPECT_EQ(l1.access(0x4000, 1, AccessType::Load, 300), 302u);

    // Evict from L1 only (L1 set count 8; 0x4000 and 0x4000+8*64 share
    // an L1 set... use conflicting addresses): two more blocks mapping
    // to the same L1 set push the first out of L1 but not out of L2.
    const Addr set_stride_l1 = 8 * 64; // 8 sets * 64 B
    l1.access(0x4000 + set_stride_l1, 1, AccessType::Load, 400);
    l1.access(0x4000 + 2 * set_stride_l1, 1, AccessType::Load, 500);
    EXPECT_FALSE(l1.contains(0x4000));
    // L1 miss, L2 hit: 2 + 10 = 12.
    EXPECT_EQ(l1.access(0x4000, 1, AccessType::Load, 1000), 1012u);
}

TEST(CacheStatsTest, DemandCountsExcludeWritebacksAndPrefetch)
{
    RecordingLevel below;
    Cache cache(smallCacheConfig("S", 1024, 4), &below);
    cache.access(0x0000, 1, AccessType::Load, 0);
    cache.access(0x0040, 1, AccessType::Store, 0);
    cache.access(0x0080, 0, AccessType::Writeback, 0);
    cache.access(0x00C0, 1, AccessType::Prefetch, 0);
    EXPECT_EQ(cache.stats().demandAccesses(), 2u);
    EXPECT_EQ(cache.stats().demandMisses(), 2u);
    EXPECT_DOUBLE_EQ(cache.stats().demandMissRate(), 1.0);
}

} // namespace
} // namespace cachescope
