/**
 * @file
 * Unit tests for BIP and DIP (the pre-RRIP insertion-policy family).
 */

#include <gtest/gtest.h>

#include "replacement/dip.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Bip, MostInsertionsGoToLruPosition)
{
    BipPolicy bip(smallGeometry(1, 4));
    // Fill ways 0..3, then fill way 0 again with a fresh block (LRU
    // insertion): it must remain the next victim.
    for (std::uint32_t w = 0; w < 4; ++w)
        bip.update(0, w, 0, w, AccessType::Load, false);
    EXPECT_EQ(bip.findVictim(0, 0, 9, AccessType::Load), 0u);
    bip.update(0, 0, 0, 100, AccessType::Load, false);
    EXPECT_EQ(bip.findVictim(0, 0, 9, AccessType::Load), 0u);
}

TEST(Bip, EpsilonFillGoesToMru)
{
    BipPolicy bip(smallGeometry(1, 2));
    // The kEpsilon-th fill lands at MRU. Drive 32 fills into way 0 and
    // make way 1 young via a hit; the 32nd fill is MRU so way 1 (hit
    // earlier) becomes older than way 0's timestamp at some point.
    bip.update(0, 1, 0, 500, AccessType::Load, false); // fill 1: LRU pos
    bip.update(0, 1, 0, 500, AccessType::Load, true);  // make way 1 young
    for (std::uint32_t i = 0; i < BipPolicy::kEpsilon - 2; ++i)
        bip.update(0, 0, 0, i, AccessType::Load, false);
    // Next fill is number kEpsilon: inserted at MRU.
    bip.update(0, 0, 0, 999, AccessType::Load, false);
    EXPECT_EQ(bip.findVictim(0, 0, 9, AccessType::Load), 1u);
}

TEST(Bip, HitsPromoteToMru)
{
    BipPolicy bip(smallGeometry(1, 2));
    bip.update(0, 0, 0, 1, AccessType::Load, false);
    bip.update(0, 1, 0, 2, AccessType::Load, false);
    bip.update(0, 0, 0, 1, AccessType::Load, true);
    EXPECT_EQ(bip.findVictim(0, 0, 9, AccessType::Load), 1u);
}

TEST(Dip, LeaderRolesPartitionSets)
{
    DipPolicy dip({2048, 11, 64});
    int lru = 0, bip = 0, followers = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        switch (dip.roleOf(s)) {
          case DipPolicy::SetRole::LruLeader: ++lru; break;
          case DipPolicy::SetRole::BipLeader: ++bip; break;
          case DipPolicy::SetRole::Follower: ++followers; break;
        }
    }
    EXPECT_EQ(lru, 32);
    EXPECT_EQ(bip, 32);
    EXPECT_EQ(followers, 2048 - 64);
}

TEST(Dip, PselTracksLeaderMisses)
{
    DipPolicy dip({2048, 4, 64});
    const std::uint32_t initial = dip.psel();
    std::uint32_t lru_leader = 0, bip_leader = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (dip.roleOf(s) == DipPolicy::SetRole::LruLeader)
            lru_leader = s;
        if (dip.roleOf(s) == DipPolicy::SetRole::BipLeader)
            bip_leader = s;
    }
    for (int i = 0; i < 100; ++i)
        dip.update(lru_leader, 0, 0, i, AccessType::Load, false);
    EXPECT_LT(dip.psel(), initial);
    for (int i = 0; i < 300; ++i)
        dip.update(bip_leader, 0, 0, 1000 + i, AccessType::Load, false);
    EXPECT_GT(dip.psel(), initial);
}

TEST(Dip, RegisteredInFactory)
{
    EXPECT_TRUE(ReplacementPolicyFactory::isRegistered("dip"));
    EXPECT_TRUE(ReplacementPolicyFactory::isRegistered("bip"));
    auto policy = ReplacementPolicyFactory::create("dip",
                                                   smallGeometry(64, 8));
    EXPECT_EQ(policy->name(), "dip");
}

TEST(Dip, LruModeBehavesLikeLru)
{
    // Saturate PSEL toward "LRU wins" and verify follower sets promote
    // fills to MRU (classic LRU behaviour).
    DipPolicy dip({2048, 2, 64});
    std::uint32_t bip_leader = 0, follower = 1;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (dip.roleOf(s) == DipPolicy::SetRole::BipLeader)
            bip_leader = s;
        if (dip.roleOf(s) == DipPolicy::SetRole::Follower)
            follower = s;
    }
    for (std::uint32_t i = 0; i < DipPolicy::kPselMax; ++i)
        dip.update(bip_leader, 0, 0, i, AccessType::Load, false);

    dip.update(follower, 0, 0, 1, AccessType::Load, false);
    dip.update(follower, 1, 0, 2, AccessType::Load, false);
    // Way 0 filled first = LRU under MRU insertion.
    EXPECT_EQ(dip.findVictim(follower, 0, 9, AccessType::Load), 0u);
}

} // namespace
} // namespace cachescope
