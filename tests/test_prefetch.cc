/**
 * @file
 * Unit and integration tests for the prefetcher models and their
 * cache-side plumbing.
 */

#include <gtest/gtest.h>

#include "core/cache.hh"
#include "prefetch/prefetcher.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::RecordingLevel;
using test::smallCacheConfig;

TEST(PrefetcherFactory, NamesAndNone)
{
    EXPECT_EQ(makePrefetcher("none"), nullptr);
    EXPECT_EQ(makePrefetcher(""), nullptr);
    EXPECT_NE(makePrefetcher("next_line"), nullptr);
    EXPECT_NE(makePrefetcher("stride"), nullptr);
    EXPECT_NE(makePrefetcher("streamer"), nullptr);
    EXPECT_EQ(availablePrefetchers().size(), 3u);
}

TEST(PrefetcherFactoryDeathTest, UnknownIsFatal)
{
    EXPECT_EXIT(makePrefetcher("warp_drive"),
                ::testing::ExitedWithCode(1), "unknown prefetcher");
}

TEST(NextLine, EmitsNextBlocks)
{
    NextLinePrefetcher pf(3);
    std::vector<Addr> out;
    pf.onAccess(100, 0x400000, false, out);
    EXPECT_EQ(out, (std::vector<Addr>{101, 102, 103}));
}

TEST(Stride, LearnsAfterConfidence)
{
    StridePrefetcher pf(64, /*degree=*/2);
    const Pc pc = 0x400010;
    std::vector<Addr> out;
    // Accesses at stride 4: first establishes, second sets stride,
    // third/fourth build confidence.
    for (Addr a : {100, 104, 108, 112}) {
        out.clear();
        pf.onAccess(a, pc, false, out);
    }
    EXPECT_EQ(out, (std::vector<Addr>{116, 120}));
}

TEST(Stride, NoPrefetchWithoutStableStride)
{
    StridePrefetcher pf(64, 2);
    const Pc pc = 0x400010;
    std::vector<Addr> out;
    for (Addr a : {100, 104, 109, 111, 200}) {
        out.clear();
        pf.onAccess(a, pc, false, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(Stride, NegativeStrides)
{
    StridePrefetcher pf(64, 1);
    const Pc pc = 0x400020;
    std::vector<Addr> out;
    for (Addr a : {1000, 992, 984, 976}) {
        out.clear();
        pf.onAccess(a, pc, false, out);
    }
    EXPECT_EQ(out, (std::vector<Addr>{968}));
}

TEST(Stride, DistinctPcsTrackedIndependently)
{
    StridePrefetcher pf(64, 1);
    std::vector<Addr> out;
    for (int i = 0; i < 6; ++i) {
        out.clear();
        pf.onAccess(100 + static_cast<Addr>(i) * 2, 0x400000, false, out);
        pf.onAccess(5000 + static_cast<Addr>(i) * 7, 0x400004, false,
                    out);
    }
    // The second PC's trained stride is 7; last emission belongs to it.
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out.back(), 5000u + 5 * 7 + 7);
}

TEST(Streamer, DetectsAscendingStream)
{
    StreamPrefetcher pf(4, /*distance=*/2);
    std::vector<Addr> out;
    // Blocks within one 4 KB region (64 blocks per region).
    for (Addr a : {10, 11, 12}) {
        out.clear();
        pf.onAccess(a, 0, false, out);
    }
    EXPECT_EQ(out, (std::vector<Addr>{13, 14}));
}

TEST(Streamer, DetectsDescendingStream)
{
    StreamPrefetcher pf(4, 2);
    std::vector<Addr> out;
    for (Addr a : {50, 49, 48}) {
        out.clear();
        pf.onAccess(a, 0, false, out);
    }
    EXPECT_EQ(out, (std::vector<Addr>{47, 46}));
}

TEST(Streamer, SingleAccessDoesNotTrain)
{
    StreamPrefetcher pf(4, 2);
    std::vector<Addr> out;
    pf.onAccess(10, 0, false, out);
    pf.onAccess(1000, 0, false, out); // different region
    EXPECT_TRUE(out.empty());
}

TEST(Streamer, TracksMultipleStreams)
{
    StreamPrefetcher pf(4, 1);
    std::vector<Addr> out;
    // Two interleaved ascending streams in different regions.
    for (int i = 0; i < 4; ++i) {
        pf.onAccess(static_cast<Addr>(i), 0, false, out);
        pf.onAccess(1024 + static_cast<Addr>(i), 0, false, out);
    }
    EXPECT_GE(out.size(), 4u); // both streams trained and prefetching
}

// ------------------------------------------------------- cache plumbing --

TEST(CachePrefetch, NextLineCutsSequentialMisses)
{
    RecordingLevel below(100);
    CacheConfig cfg = smallCacheConfig("pf", 8 * 1024, 8);
    cfg.prefetcher = "next_line";
    Cache cache(cfg, &below);

    for (Addr a = 0; a < 64; ++a)
        cache.access(a * 64, 0x400000, AccessType::Load, a);

    // With next-line prefetch, all but the first demand access hit.
    EXPECT_EQ(cache.stats().missesOf(AccessType::Load), 1u);
    EXPECT_EQ(cache.stats().prefetchesIssued, 64u);
    EXPECT_EQ(cache.stats().prefetchesUseful, 63u);
    // Prefetches fetched the lines from below.
    EXPECT_EQ(below.countOf(AccessType::Prefetch), 64u);
}

TEST(CachePrefetch, NoPrefetcherNoTraffic)
{
    RecordingLevel below(100);
    Cache cache(smallCacheConfig("nopf", 8 * 1024, 8), &below);
    for (Addr a = 0; a < 16; ++a)
        cache.access(a * 64, 0x400000, AccessType::Load, a);
    EXPECT_EQ(cache.stats().prefetchesIssued, 0u);
    EXPECT_EQ(below.countOf(AccessType::Prefetch), 0u);
}

TEST(CachePrefetch, WritebacksDoNotTriggerPrefetch)
{
    RecordingLevel below(100);
    CacheConfig cfg = smallCacheConfig("pf", 8 * 1024, 8);
    cfg.prefetcher = "next_line";
    Cache cache(cfg, &below);
    cache.access(0x4000, 0, AccessType::Writeback, 0);
    EXPECT_EQ(cache.stats().prefetchesIssued, 0u);
}

TEST(CachePrefetch, UselessPrefetchesAreNotCountedUseful)
{
    RecordingLevel below(100);
    CacheConfig cfg = smallCacheConfig("pf", 8 * 1024, 8);
    cfg.prefetcher = "next_line";
    Cache cache(cfg, &below);
    // Two far-apart accesses: their next-line prefetches are never
    // demanded.
    cache.access(0x0000, 0x400000, AccessType::Load, 0);
    cache.access(0x8000 * 4, 0x400000, AccessType::Load, 1);
    EXPECT_EQ(cache.stats().prefetchesIssued, 2u);
    EXPECT_EQ(cache.stats().prefetchesUseful, 0u);
}

TEST(CachePrefetch, PrefetchedLineCountedUsefulOnceOnly)
{
    RecordingLevel below(100);
    CacheConfig cfg = smallCacheConfig("pf", 8 * 1024, 8);
    cfg.prefetcher = "next_line";
    Cache cache(cfg, &below);
    cache.access(0, 0x400000, AccessType::Load, 0);   // prefetches block 1
    cache.access(64, 0x400000, AccessType::Load, 1);  // useful (1st)
    cache.access(64, 0x400000, AccessType::Load, 2);  // plain hit
    EXPECT_EQ(cache.stats().prefetchesUseful, 1u);
}

} // namespace
} // namespace cachescope
