/**
 * @file
 * CI validator for BENCH_*.json / --metrics-json artifacts: parses
 * each file as a cachescope-metrics-v1 document and enforces the
 * schema invariants the perf-trajectory tooling relies on (non-empty
 * name, non-negative finite wall_ms, at least one counter).
 *
 * usage: check_bench_json FILE [FILE ...]
 * exit codes: 0 all valid; 1 any invalid or unreadable.
 */

#include <cmath>
#include <cstdio>

#include "stats/metrics.hh"

using namespace cachescope;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s FILE [FILE ...]\n", argv[0]);
        return 1;
    }
    int bad = 0;
    for (int i = 1; i < argc; ++i) {
        auto doc_or = readMetricsJsonFile(argv[i]);
        if (!doc_or.ok()) {
            std::fprintf(stderr, "%s: %s\n", argv[i],
                         doc_or.status().message().c_str());
            ++bad;
            continue;
        }
        const MetricsDocument doc = doc_or.take();
        const char *problem = nullptr;
        if (doc.name.empty())
            problem = "empty name";
        else if (!(doc.wallMs >= 0.0) || !std::isfinite(doc.wallMs))
            problem = "wall_ms not a finite non-negative number";
        else if (doc.metrics.counters().empty())
            problem = "no counters";
        if (problem != nullptr) {
            std::fprintf(stderr, "%s: %s\n", argv[i], problem);
            ++bad;
            continue;
        }
        std::printf("%s: ok (name=%s, %zu counters, %zu gauges, "
                    "%zu histograms)\n",
                    argv[i], doc.name.c_str(),
                    doc.metrics.counters().size(),
                    doc.metrics.gauges().size(),
                    doc.metrics.histograms().size());
    }
    return bad == 0 ? 0 : 1;
}
