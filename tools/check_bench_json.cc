/**
 * @file
 * CI validator for BENCH_*.json / --metrics-json artifacts: parses
 * each file as a cachescope-metrics-v1 document and enforces the
 * schema invariants the perf-trajectory tooling relies on (non-empty
 * name, non-negative finite wall_ms, at least one counter).
 *
 * Beyond the envelope, content invariants are enforced on every
 * document: no gauge anywhere may be non-finite (an inf/nan gauge
 * means a divide-by-zero escaped the simulator); co-run documents
 * (any subtree carrying a "corun.num_cores" counter) must export one
 * "core<i>." subtree per core whose per-core LLC attribution counters
 * sum exactly to the shared "llc." totals; and set-sampling subtrees
 * (any "sampled.sample_rate" counter) must carry a sane subset size,
 * scaled estimates no smaller than their raw sibling counters, and an
 * estimated miss rate in [0, 1].
 *
 * With --baseline it additionally compares one gauge (default
 * sim.throughput_mips) against a committed baseline document and
 * flags a drop beyond --tolerance-pct (default 10). --warn-only
 * reports the regression but keeps the exit code 0 — the perf-smoke
 * CI job uses that, since shared runners are noisy.
 *
 * usage: check_bench_json [--baseline FILE] [--gauge NAME]
 *                         [--tolerance-pct N] [--warn-only]
 *                         FILE [FILE ...]
 * exit codes: 0 all valid (and within tolerance, or --warn-only);
 *             1 any invalid, unreadable, or regressed.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "stats/metrics.hh"

using namespace cachescope;

namespace {

/** @return the gauge's value, or NaN if the document lacks it. */
double
gaugeValue(const MetricsDocument &doc, const std::string &name)
{
    const auto &gauges = doc.metrics.gauges();
    const auto it = gauges.find(name);
    return it == gauges.end()
        ? std::nan("")
        : it->second;
}

/**
 * @return a description of every schema violation in @p doc beyond the
 * basic envelope (empty when the document is clean): non-finite
 * gauges, and co-run trees whose per-core subtrees are missing or
 * whose LLC attribution slices fail to sum to the shared totals.
 */
std::string
contentProblems(const MetricsDocument &doc)
{
    std::string problems;
    auto complain = [&problems](const std::string &what) {
        if (!problems.empty())
            problems += "; ";
        problems += what;
    };

    for (const auto &[path, value] : doc.metrics.gauges()) {
        if (!std::isfinite(value))
            complain("gauge '" + path + "' is not finite");
    }

    // Every "profile.sample_rate" counter marks one online-profiler
    // subtree rooted at its prefix; validate that subtree's schema:
    // the core counters present and mutually consistent, the entropy
    // and concentration gauges present and in range. fig9_pc_corr
    // documents must additionally be non-empty per workload (a
    // profiled simulation that saw no LLC demand access means the
    // bench mis-ran) and carry both contrast groups.
    {
        const auto &counters = doc.metrics.counters();
        const auto &gauges = doc.metrics.gauges();
        const std::string marker = "profile.sample_rate";
        std::size_t gap_trees = 0;
        std::size_t spec_trees = 0;
        for (const auto &[path, rate] : counters) {
            if (path.size() < marker.size() ||
                path.compare(path.size() - marker.size(), marker.size(),
                             marker) != 0) {
                continue;
            }
            const std::string prefix =
                path.substr(0, path.size() - sizeof("sample_rate") + 1);
            if (rate == 0)
                complain("'" + path + "' must be >= 1");
            const auto demand = counters.find(prefix + "demand_accesses");
            const auto sampled =
                counters.find(prefix + "sampled_accesses");
            for (const char *want :
                 {"demand_accesses", "sampled_accesses", "distinct_pcs",
                  "pcs_for_90pct", "footprint_blocks"}) {
                if (counters.find(prefix + want) == counters.end())
                    complain("profile tree '" + prefix +
                             "' lacks counter '" + want + "'");
            }
            if (demand != counters.end() && sampled != counters.end() &&
                sampled->second > demand->second) {
                complain("profile tree '" + prefix +
                         "': sampled_accesses exceeds demand_accesses");
            }
            if (gauges.find(prefix + "pc_entropy_bits") == gauges.end())
                complain("profile tree '" + prefix +
                         "' lacks gauge 'pc_entropy_bits'");
            const auto top8 =
                gauges.find(prefix + "concentration.top_8");
            if (top8 == gauges.end()) {
                complain("profile tree '" + prefix +
                         "' lacks gauge 'concentration.top_8'");
            } else if (top8->second < 0.0 || top8->second > 1.0) {
                complain("profile tree '" + prefix +
                         "': concentration.top_8 outside [0, 1]");
            }
            if (doc.name == "fig9_pc_corr") {
                if (demand != counters.end() && demand->second == 0)
                    complain("fig9 profile tree '" + prefix +
                             "' is empty (no demand accesses)");
                gap_trees += prefix.rfind("gap.", 0) == 0;
                spec_trees += prefix.rfind("spec_like.", 0) == 0;
            }
        }
        if (doc.name == "fig9_pc_corr" &&
            (gap_trees == 0 || spec_trees == 0)) {
            complain("fig9_pc_corr needs profiled workloads in both "
                     "the gap. and spec_like. groups");
        }
    }

    // Every "sampled.sample_rate" counter marks one LLC set-sampling
    // subtree rooted at its prefix (emitted only when --sample-sets >
    // 1); validate its schema: rate and subset size sane, every
    // scaled estimate >= its raw sibling counter (the x-rate scaling
    // can only grow a count, and the inequality survives the
    // counter-summing "total." aggregation of sweep documents), and —
    // where the tree carries gauges, which the counters-only "total."
    // aggregates do not — the error gauge finite (globally enforced
    // above) and the estimated miss rate a probability.
    {
        const auto &counters = doc.metrics.counters();
        const auto &gauges = doc.metrics.gauges();
        const std::string marker = "sampled.sample_rate";
        for (const auto &[path, rate] : counters) {
            if (path.size() < marker.size() ||
                path.compare(path.size() - marker.size(), marker.size(),
                             marker) != 0) {
                continue;
            }
            const std::string prefix =
                path.substr(0, path.size() - sizeof("sample_rate") + 1);
            if (rate == 0)
                complain("'" + path + "' must be >= 1");
            const auto count_of = [&counters, &prefix,
                                   &complain](const char *name) {
                const auto it = counters.find(prefix + name);
                if (it == counters.end()) {
                    complain("sampled tree '" + prefix +
                             "' lacks counter '" + name + "'");
                    return std::uint64_t{0};
                }
                return it->second;
            };
            const std::uint64_t sets_total = count_of("sets_total");
            const std::uint64_t sets_sampled = count_of("sets_sampled");
            if (sets_sampled == 0 || sets_sampled > sets_total) {
                complain("sampled tree '" + prefix +
                         "': sets_sampled must be in [1, sets_total]");
            }
            // Raw siblings live one level up, in the cache's own
            // stats tree: demand = load + store.
            const std::string cache =
                prefix.substr(0, prefix.size() - sizeof("sampled.") + 1);
            const auto raw_demand = [&counters,
                                     &cache](const char *family) {
                std::uint64_t sum = 0;
                for (const char *type : {"load", "store"}) {
                    const auto it = counters.find(cache + family + "." +
                                                  std::string(type));
                    if (it != counters.end())
                        sum += it->second;
                }
                return sum;
            };
            const std::uint64_t raw_hits = raw_demand("hits");
            const std::uint64_t raw_misses = raw_demand("misses");
            if (count_of("demand_hits") < raw_hits) {
                complain("sampled tree '" + prefix +
                         "': scaled demand_hits below the raw count");
            }
            if (count_of("demand_misses") < raw_misses) {
                complain("sampled tree '" + prefix +
                         "': scaled demand_misses below the raw count");
            }
            if (count_of("demand_accesses") < raw_hits + raw_misses) {
                complain("sampled tree '" + prefix +
                         "': scaled demand_accesses below the raw count");
            }
            const auto mr = gauges.find(prefix + "demand_miss_rate");
            const auto se = gauges.find(prefix + "relative_stderr");
            if (mr != gauges.end() &&
                (mr->second < 0.0 || mr->second > 1.0)) {
                complain("sampled tree '" + prefix +
                         "': demand_miss_rate outside [0, 1]");
            }
            // A per-cell tree carries both gauges or neither; only
            // the counters-only aggregates may omit them.
            if ((mr == gauges.end()) != (se == gauges.end())) {
                complain("sampled tree '" + prefix +
                         "' carries only one of demand_miss_rate / "
                         "relative_stderr");
            }
        }
    }

    // Every "corun.num_cores" counter marks one co-run tree rooted at
    // its prefix; validate that tree's per-core schema.
    const auto &counters = doc.metrics.counters();
    const std::string marker = "corun.num_cores";
    for (const auto &[path, num_cores] : counters) {
        if (path.size() < marker.size() ||
            path.compare(path.size() - marker.size(), marker.size(),
                         marker) != 0) {
            continue;
        }
        const std::string prefix =
            path.substr(0, path.size() - marker.size());
        for (std::uint64_t i = 0; i < num_cores; ++i) {
            const std::string want =
                prefix + "core" + std::to_string(i) +
                ".core.instructions";
            if (counters.find(want) == counters.end())
                complain("co-run tree '" + prefix +
                         "' lacks counter '" + want + "'");
        }
        // The per-core LLC slices must sum exactly to the shared
        // totals (policy/prefetcher internals are shared-only and
        // exported once, so they are exempt).
        const std::string shared = prefix + "llc.";
        for (const auto &[spath, svalue] : counters) {
            if (spath.rfind(shared, 0) != 0)
                continue;
            const std::string tail = spath.substr(prefix.size());
            if (tail.find(".policy.") != std::string::npos ||
                tail.find(".prefetcher.") != std::string::npos) {
                continue;
            }
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < num_cores; ++i) {
                const auto it = counters.find(
                    prefix + "core" + std::to_string(i) + "." + tail);
                if (it != counters.end())
                    sum += it->second;
            }
            if (sum != svalue) {
                complain("co-run counter '" + spath +
                         "': per-core slices sum to " +
                         std::to_string(sum) + ", shared total is " +
                         std::to_string(svalue));
            }
        }
    }
    return problems;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string gauge = "sim.throughput_mips";
    double tolerance_pct = 10.0;
    bool warn_only = false;
    std::vector<const char *> files;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--baseline") == 0)
            baseline_path = next();
        else if (std::strcmp(arg, "--gauge") == 0)
            gauge = next();
        else if (std::strcmp(arg, "--tolerance-pct") == 0)
            tolerance_pct = std::atof(next());
        else if (std::strcmp(arg, "--warn-only") == 0)
            warn_only = true;
        else
            files.push_back(arg);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--baseline FILE] [--gauge NAME] "
                     "[--tolerance-pct N] [--warn-only] FILE "
                     "[FILE ...]\n",
                     argv[0]);
        return 1;
    }

    double baseline_value = std::nan("");
    if (!baseline_path.empty()) {
        auto doc_or = readMetricsJsonFile(baseline_path);
        if (!doc_or.ok()) {
            std::fprintf(stderr, "baseline %s: %s\n",
                         baseline_path.c_str(),
                         doc_or.status().message().c_str());
            return 1;
        }
        baseline_value = gaugeValue(doc_or.value(), gauge);
        if (!std::isfinite(baseline_value) || baseline_value <= 0.0) {
            std::fprintf(stderr,
                         "baseline %s: gauge '%s' missing or not a "
                         "positive finite number\n",
                         baseline_path.c_str(), gauge.c_str());
            return 1;
        }
    }

    int bad = 0;
    for (const char *file : files) {
        auto doc_or = readMetricsJsonFile(file);
        if (!doc_or.ok()) {
            std::fprintf(stderr, "%s: %s\n", file,
                         doc_or.status().message().c_str());
            ++bad;
            continue;
        }
        const MetricsDocument doc = doc_or.take();
        const char *problem = nullptr;
        if (doc.name.empty())
            problem = "empty name";
        else if (!(doc.wallMs >= 0.0) || !std::isfinite(doc.wallMs))
            problem = "wall_ms not a finite non-negative number";
        else if (doc.metrics.counters().empty())
            problem = "no counters";
        if (problem != nullptr) {
            std::fprintf(stderr, "%s: %s\n", file, problem);
            ++bad;
            continue;
        }
        if (const std::string content = contentProblems(doc);
            !content.empty()) {
            std::fprintf(stderr, "%s: %s\n", file, content.c_str());
            ++bad;
            continue;
        }
        std::printf("%s: ok (name=%s, %zu counters, %zu gauges, "
                    "%zu histograms)\n",
                    file, doc.name.c_str(),
                    doc.metrics.counters().size(),
                    doc.metrics.gauges().size(),
                    doc.metrics.histograms().size());

        if (!std::isfinite(baseline_value))
            continue;
        const double value = gaugeValue(doc, gauge);
        if (!std::isfinite(value)) {
            std::fprintf(stderr, "%s: gauge '%s' missing\n", file,
                         gauge.c_str());
            ++bad;
            continue;
        }
        const double change_pct =
            (value - baseline_value) / baseline_value * 100.0;
        std::printf("%s: %s = %.2f vs baseline %.2f (%+.1f%%)\n", file,
                    gauge.c_str(), value, baseline_value, change_pct);
        if (change_pct < -tolerance_pct) {
            std::fprintf(stderr,
                         "%s: %s REGRESSION: %.2f is %.1f%% below "
                         "baseline %.2f (tolerance %.0f%%)%s\n",
                         file, gauge.c_str(), value, -change_pct,
                         baseline_value, tolerance_pct,
                         warn_only ? " [warn-only]" : "");
            if (!warn_only)
                ++bad;
        }
    }
    return bad == 0 ? 0 : 1;
}
