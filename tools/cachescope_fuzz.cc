/**
 * @file
 * cachescope-fuzz — the differential-testing / trace-fuzzing front end.
 *
 * Draws seeds, generates adversarial access streams, and checks the
 * difftest invariant families (reference-model agreement, OPT
 * dominance, trace round-trip fidelity, metrics conservation, serial
 * vs parallel sweep equality) on each. The first violation stops the
 * run: the triggering stream is optionally minimized and written out
 * as a repro bundle (v2 trace + config + expected/actual metric trees)
 * that `cachescope replay` and the difftest unit tests can consume.
 *
 * Flags:
 *   --seed N           first seed (default 1)
 *   --runs N           seeds to try (default 100)
 *   --time-budget-s N  stop drawing new seeds after N seconds (0 = off)
 *   --minimize         shrink the failing stream before writing it
 *   --out-dir D        scratch + repro-bundle directory (default ".")
 *   --length N         memory accesses per stream (default 8192)
 *   --no-sweep         skip the sweep-equality family (fastest)
 *   --no-conservation  skip the full-simulator conservation family
 *   --inject-bug       test-only: break LRU by one way; the run must
 *                      then fail with a model_agreement:lru violation
 *
 * Exit codes: 0 all seeds clean; 1 an invariant violation was found
 * (repro bundle written); 2 infrastructure or usage error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "difftest/difftest.hh"
#include "stats/metrics.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace cachescope;
using namespace cachescope::difftest;

namespace {

/** Flags cachescope-fuzz understands; typos must not silently run. */
constexpr const char *kKnownFlags[] = {
    "seed",     "runs",     "time-budget-s",   "minimize",   "out-dir",
    "length",   "no-sweep", "no-conservation", "inject-bug",
};

/** Tiny flag parser: --key value pairs plus boolean --key. */
class Args
{
  public:
    // GCC 12 reports a spurious -Wrestrict (PR105329) when it inlines
    // these map inserts into main; the copies are tiny and disjoint.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                fatal("unexpected argument '%s'", argv[i]);
            const std::string key(argv[i] + 2);
            if (std::find_if(std::begin(kKnownFlags), std::end(kKnownFlags),
                             [&key](const char *f) { return key == f; }) ==
                std::end(kKnownFlags)) {
                fatal("unknown flag '--%s' (see --help)", key.c_str());
            }
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values.insert_or_assign(key, argv[++i]);
            } else {
                values.insert_or_assign(key, "1");
            }
        }
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        auto parsed = parseU64(it->second);
        if (!parsed.ok()) {
            fatal("flag --%s: %s", key.c_str(),
                  parsed.status().message().c_str());
        }
        return parsed.take();
    }

    bool has(const std::string &key) const { return values.count(key); }

  private:
    std::map<std::string, std::string> values;
};

void
usage()
{
    std::puts(
        "usage: cachescope-fuzz [--seed N] [--runs N] [--time-budget-s N]\n"
        "                       [--minimize] [--out-dir D] [--length N]\n"
        "                       [--no-sweep] [--no-conservation]\n"
        "                       [--inject-bug]\n"
        "Differentially fuzz the cache simulator against its reference\n"
        "models. Exit 0 = clean, 1 = violation (repro bundle written),\n"
        "2 = infrastructure error.");
}

/** Write a failing stream + metadata as a replayable repro bundle. */
int
writeBundle(const std::string &out_dir, const DiffFailure &failure,
            const std::vector<TraceRecord> &stream,
            std::size_t original_records, std::size_t evaluations,
            const DiffOptions &opts)
{
    namespace fs = std::filesystem;
    const std::string dir =
        out_dir + "/repro_seed" + std::to_string(failure.seed);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "cachescope-fuzz: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return 2;
    }

    // The stream, as a v2 trace replayable by `cachescope replay`.
    {
        auto writer = TraceWriter::open(dir + "/stream.trace");
        if (!writer.ok()) {
            std::fprintf(stderr, "cachescope-fuzz: %s\n",
                         writer.status().toString().c_str());
            return 2;
        }
        for (const TraceRecord &rec : stream)
            (*writer)->onInstruction(rec);
        const Status st = (*writer)->finish();
        if (!st.ok()) {
            std::fprintf(stderr, "cachescope-fuzz: %s\n",
                         st.toString().c_str());
            return 2;
        }
    }

    // Expected vs actual metric trees.
    Status st = writeMetricsJsonFile(
        MetricsDocument{failure.invariant, 0.0, failure.expected},
        dir + "/expected.json");
    if (st.ok()) {
        st = writeMetricsJsonFile(
            MetricsDocument{failure.invariant, 0.0, failure.actual},
            dir + "/actual.json");
    }
    if (!st.ok()) {
        std::fprintf(stderr, "cachescope-fuzz: %s\n",
                     st.toString().c_str());
        return 2;
    }

    // Human-readable reproduction recipe.
    std::FILE *cfg = std::fopen((dir + "/config.txt").c_str(), "w");
    if (!cfg) {
        std::fprintf(stderr, "cachescope-fuzz: cannot write %s/config.txt\n",
                     dir.c_str());
        return 2;
    }
    std::fprintf(cfg,
                 "seed %llu\n"
                 "stream_kind %s\n"
                 "invariant %s\n"
                 "detail %s\n"
                 "geometry sets=%u ways=%u block=%u\n"
                 "stream_records %zu\n"
                 "original_records %zu\n"
                 "minimizer_evaluations %zu\n"
                 "length_flag %zu\n",
                 static_cast<unsigned long long>(failure.seed),
                 streamKindName(failure.kind), failure.invariant.c_str(),
                 failure.detail.c_str(), opts.geometry.numSets,
                 opts.geometry.numWays, opts.geometry.blockBytes,
                 stream.size(), original_records, evaluations,
                 opts.memoryAccesses);
    std::fclose(cfg);

    std::fprintf(stderr, "cachescope-fuzz: repro bundle written to %s\n",
                 dir.c_str());
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (!std::strcmp(argv[1], "--help") ||
                     !std::strcmp(argv[1], "-h"))) {
        usage();
        return 0;
    }
    const Args args(argc, argv, 1);

    const std::uint64_t first_seed = args.getU64("seed", 1);
    const std::uint64_t runs = args.getU64("runs", 100);
    const std::uint64_t budget_s = args.getU64("time-budget-s", 0);
    const std::string out_dir = args.get("out-dir", ".");

    DiffOptions opts;
    opts.memoryAccesses =
        static_cast<std::size_t>(args.getU64("length", 8192));
    opts.scratchDir = out_dir;
    opts.checkSweep = !args.has("no-sweep");
    opts.checkConservation = !args.has("no-conservation");
    opts.injectOffByOneLru = args.has("inject-bug");

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "cachescope-fuzz: cannot create %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return 2;
    }

    auto driver = DifferentialDriver::create(opts);
    if (!driver.ok()) {
        std::fprintf(stderr, "cachescope-fuzz: %s\n",
                     driver.status().toString().c_str());
        return 2;
    }

    const auto start = std::chrono::steady_clock::now();
    auto elapsed_s = [&start] {
        return std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::uint64_t checked = 0;
    for (std::uint64_t i = 0; i < runs; ++i) {
        if (budget_s != 0 &&
            elapsed_s() >= static_cast<long long>(budget_s)) {
            std::fprintf(stderr,
                         "cachescope-fuzz: time budget (%llus) reached "
                         "after %llu seeds\n",
                         static_cast<unsigned long long>(budget_s),
                         static_cast<unsigned long long>(checked));
            break;
        }
        const std::uint64_t seed = first_seed + i;
        auto failures = (*driver)->runSeed(seed);
        if (!failures.ok()) {
            std::fprintf(stderr, "cachescope-fuzz: %s\n",
                         failures.status().toString().c_str());
            return 2;
        }
        ++checked;
        if ((checked % 25) == 0) {
            std::fprintf(stderr,
                         "cachescope-fuzz: %llu/%llu seeds clean\n",
                         static_cast<unsigned long long>(checked),
                         static_cast<unsigned long long>(runs));
        }
        if (failures->empty())
            continue;

        const DiffFailure &failure = failures->front();
        std::fprintf(stderr,
                     "cachescope-fuzz: seed %llu (%s stream) violates "
                     "%s\n  %s\n",
                     static_cast<unsigned long long>(seed),
                     streamKindName(failure.kind),
                     failure.invariant.c_str(), failure.detail.c_str());

        std::vector<TraceRecord> stream = (*driver)->streamForSeed(seed);
        const std::size_t original = stream.size();
        std::size_t evaluations = 0;
        if (args.has("minimize")) {
            // Minimization replays the predicate many times; skip the
            // expensive whole-simulator families while shrinking.
            auto shrunk = (*driver)->minimize(stream, failure);
            evaluations = shrunk.evaluations;
            std::fprintf(
                stderr,
                "cachescope-fuzz: minimized %zu -> %zu records in %zu "
                "evaluations\n",
                original, shrunk.stream.size(), shrunk.evaluations);
            stream = std::move(shrunk.stream);
        }
        return writeBundle(out_dir, failure, stream, original, evaluations,
                           opts);
    }

    std::printf("cachescope-fuzz: %llu seeds checked, zero violations\n",
                static_cast<unsigned long long>(checked));
    return 0;
}
