/**
 * @file
 * cachescope-soak — chaos soak for the sweep harness.
 *
 * Repeatedly runs a small (workload x policy) sweep in forked child
 * processes while injecting faults and killing children mid-run, all
 * against one shared checkpoint journal, then verifies the harness's
 * crash-consistency story end to end:
 *
 *  - every child ends in a clean report or a clean recoverable error
 *    (exit 0/2/3, an injected abort's exit 42, or the parent's kill
 *    signal) — never a crash of its own;
 *  - the journal reopens cleanly after every death, including hard
 *    kills that tear the trailing record;
 *  - a cell hung by an injected sleep is reaped by --cell-timeout-s
 *    instead of stalling the sweep;
 *  - after all the chaos, resuming the journal produces a metric tree
 *    byte-identical (modulo wall-clock noise) to an uninterrupted run.
 *
 * Cycle kinds rotate deterministically from --seed: a shotgun pass
 * arming every failpoint site at low probability, targeted single-site
 * error/throw schedules, an injected abort (std::_Exit mid-run, no
 * flushing — a simulated SIGKILL), real parent-side SIGKILL/SIGTERM at
 * a random delay, a hang+timeout check, and a trace-I/O chaos pass so
 * the trace.* and metrics.json.write sites get exercised too.
 *
 * Exit codes: 0 all invariants held; 1 an invariant was violated or
 * the driver was misused. Everything needed to replay a failure — the
 * seed, the journal, and per-cycle failpoint specs — is printed and
 * left in --out-dir.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/workload_zoo.hh"
#include "stats/metrics.hh"
#include "trace/trace_io.hh"
#include "util/failpoint.hh"
#include "util/parse.hh"
#include "util/rng.hh"

using namespace cachescope;

namespace {

/** Child exit code for a recoverable setup error (journal/metrics). */
constexpr int kExitRecoverable = 3;
/** Child exit code for a soak-driver bug (bad generated spec). */
constexpr int kExitDriverBug = 4;

/** The grid every sweep cycle runs: small, synthetic, deterministic. */
const std::vector<std::string> &
soakPolicies()
{
    static const std::vector<std::string> policies = {"lru", "srrip",
                                                      "ship"};
    return policies;
}

ZooOptions
soakZooOptions()
{
    ZooOptions options;
    // Fixed seed: the chaos schedule varies per cycle, the simulated
    // work never does — that is what makes the final byte-identity
    // check meaningful.
    options.seed = 7;
    options.synthMainBytes = 4ull << 20;
    return options;
}

std::vector<std::shared_ptr<Workload>>
soakSuite()
{
    std::vector<std::shared_ptr<Workload>> suite;
    for (const char *name : {"small_ws", "scan_thrash", "hot_cold"})
        suite.push_back(makeNamedWorkload(name, soakZooOptions()));
    return suite;
}

SimConfig
soakConfig()
{
    // Enough instructions that the sim.loop polling point fires ~100
    // times per cell (so injected sleeps and timeouts land mid-cell)
    // while a full 9-cell sweep still takes well under a second.
    SimConfig cfg = cascadeLakeConfig("lru", 2'000, 2'000'000);
    // Half the default LLC (keeping it divisible into the 11-way
    // Cascade Lake geometry) so the small synthetic workloads actually
    // stress eviction paths.
    cfg.hierarchy.llc.sizeBytes = 704 * 1024;
    return cfg;
}

/**
 * Child body: one sweep against @p journal_path under @p failpoints.
 * Never returns; exits via std::_Exit so the parent's stdio buffers
 * (inherited by fork) are not flushed twice.
 */
[[noreturn]] void
childSweep(const std::string &failpoints, const std::string &journal_path,
           double cell_timeout_s, unsigned retries,
           const std::string &metrics_path)
{
    if (!failpoints.empty()) {
        if (Status s = failpoint::configure(failpoints); !s.ok()) {
            std::fprintf(stderr, "soak child: bad failpoint spec: %s\n",
                         s.message().c_str());
            std::_Exit(kExitDriverBug);
        }
    }

    CheckpointJournal journal;
    if (Status s = journal.open(journal_path); !s.ok()) {
        // Injected checkpoint.open/replay failures and real corruption
        // both surface here: a clean, recoverable error.
        std::fprintf(stderr, "soak child: journal: %s\n",
                     s.message().c_str());
        std::_Exit(kExitRecoverable);
    }

    SuiteRunner runner(soakConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    runner.setRetries(retries);
    if (cell_timeout_s > 0.0)
        runner.setCellTimeout(cell_timeout_s);
    runner.setCheckpoint(&journal);

    const SweepReport report = runner.runChecked(soakSuite(),
                                                 soakPolicies());

    if (!metrics_path.empty()) {
        MetricsDocument doc;
        doc.name = "soak";
        doc.metrics = report.metrics;
        if (Status s = writeMetricsJsonFile(doc, metrics_path);
            !s.ok()) {
            std::fprintf(stderr, "soak child: metrics: %s\n",
                         s.message().c_str());
            std::_Exit(kExitRecoverable);
        }
    }
    journal.close();
    if (!report.allOk()) {
        for (const auto &outcome : report.outcomes) {
            if (!outcome.ok) {
                std::fprintf(stderr, "soak child: cell %s/%s: %s\n",
                             outcome.workload.c_str(),
                             outcome.policy.c_str(),
                             outcome.error.c_str());
            }
        }
    }
    std::_Exit(report.allOk() ? 0 : 2);
}

/**
 * Child body for the trace-chaos cycle: capture a bounded trace,
 * replay it, and export metrics, with the trace.* and
 * metrics.json.write sites armed. Any failure must surface as a clean
 * Status, never a crash.
 */
[[noreturn]] void
childTrace(const std::string &failpoints, const std::string &dir)
{
    if (Status s = failpoint::configure(failpoints); !s.ok()) {
        std::fprintf(stderr, "soak child: bad failpoint spec: %s\n",
                     s.message().c_str());
        std::_Exit(kExitDriverBug);
    }

    const std::string trace_path = dir + "/soak_trace.bin";
    bool ok = true;
    std::string err;

    {
        auto writer_or = TraceWriter::open(trace_path);
        if (!writer_or.ok()) {
            ok = false;
            err = writer_or.status().message();
        } else {
            TraceWriter &writer = *writer_or.value();
            struct Bounded : InstructionSink
            {
                Bounded(TraceWriter &writer, std::uint64_t budget)
                    : out(writer), budget(budget)
                {}
                void
                onInstruction(const TraceRecord &rec) override
                {
                    out.onInstruction(rec);
                }
                bool
                wantsMore() const override
                {
                    return out.status().ok() &&
                           out.recordsWritten() < budget;
                }
                TraceWriter &out;
                std::uint64_t budget;
            } sink(writer, 200'000);
            makeNamedWorkload("small_ws", soakZooOptions())->run(sink);
            if (Status s = writer.finish(); !s.ok()) {
                ok = false;
                err = s.message();
            }
        }
    }

    if (ok) {
        auto reader_or = TraceReader::open(trace_path);
        if (!reader_or.ok()) {
            ok = false;
            err = reader_or.status().message();
        } else {
            Simulator sim(soakConfig());
            std::uint64_t replayed = 0;
            if (Status s = reader_or.value()->replayInto(sim, &replayed);
                !s.ok()) {
                ok = false;
                err = s.message();
            }
        }
    }

    MetricsDocument doc;
    doc.name = "soak-trace";
    doc.metrics.addCounter("soak.trace_roundtrip_ok", ok ? 1 : 0);
    if (Status s = writeMetricsJsonFile(doc,
                                        dir + "/soak_trace_metrics.json");
        !s.ok()) {
        ok = false;
        err = s.message();
    }

    if (!ok)
        std::fprintf(stderr, "soak child (trace): %s\n", err.c_str());
    std::_Exit(ok ? 0 : 2);
}

/**
 * Fork @p child_fn and reap it. When @p kill_after_s > 0, send
 * @p kill_signo once that much time has passed (if the child is still
 * alive). @return the exit code, or -1 if the child died by a signal
 * (reported via @p term_signal).
 */
template <typename Fn>
int
runChild(Fn &&child_fn, double kill_after_s, int kill_signo,
         int *term_signal, double *wall_s)
{
    std::fflush(stdout);
    std::fflush(stderr);
    const auto start = std::chrono::steady_clock::now();
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("soak: fork");
        std::exit(1);
    }
    if (pid == 0) {
        child_fn();
        std::_Exit(kExitDriverBug); // child bodies never return
    }

    int status = 0;
    if (kill_after_s > 0.0) {
        bool reaped = false;
        while (true) {
            const pid_t r = waitpid(pid, &status, WNOHANG);
            if (r == pid) {
                reaped = true;
                break;
            }
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (elapsed >= kill_after_s)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (!reaped) {
            kill(pid, kill_signo);
            waitpid(pid, &status, 0);
        }
    } else {
        waitpid(pid, &status, 0);
    }

    *wall_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    if (WIFSIGNALED(status)) {
        *term_signal = WTERMSIG(status);
        return -1;
    }
    *term_signal = 0;
    return WIFEXITED(status) ? WEXITSTATUS(status) : kExitDriverBug;
}

/** Drop run-dependent noise so metric trees compare byte-for-byte. */
MetricsRegistry
stripNondeterministic(const MetricsRegistry &in)
{
    auto is_wall = [](const std::string &path) {
        for (const char *suffix :
             {".wall_ms", "wall_seconds", ".throughput_mips"}) {
            const std::size_t n = std::strlen(suffix);
            if (path.size() >= n &&
                path.compare(path.size() - n, n, suffix) == 0)
                return true;
        }
        return false;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters()) {
        if (path == "sweep.attempts_total" ||
            path == "sweep.checkpoint_restores" ||
            path == "sweep.executed" ||
            path == "sweep.cells_cancelled") {
            continue;
        }
        out.setCounter(path, value);
    }
    for (const auto &[path, value] : in.gauges()) {
        if (!is_wall(path))
            out.setGauge(path, value);
    }
    for (const auto &[path, snapshot] : in.histograms()) {
        if (path != "sweep.cell_wall_ms")
            out.setHistogram(path, snapshot);
    }
    return out;
}

enum class CycleKind
{
    Shotgun,     ///< every site armed at low probability
    Kill,        ///< parent sends SIGKILL/SIGTERM mid-run
    SingleError, ///< one sweep-path site returns an injected error
    Abort,       ///< one site std::_Exit()s mid-run (simulated SIGKILL)
    Hang,        ///< sim.loop sleeps; --cell-timeout-s must reap it
    TraceChaos,  ///< trace/metrics I/O sites armed on a capture+replay
    SingleThrow, ///< one sweep-path site throws mid-run
};

const char *
cycleKindName(CycleKind kind)
{
    switch (kind) {
    case CycleKind::Shotgun: return "shotgun";
    case CycleKind::Kill: return "kill";
    case CycleKind::SingleError: return "single-error";
    case CycleKind::Abort: return "abort";
    case CycleKind::Hang: return "hang";
    case CycleKind::TraceChaos: return "trace-chaos";
    case CycleKind::SingleThrow: return "single-throw";
    }
    return "?";
}

/** One full rotation covers every kind and three kill/resume cycles. */
constexpr std::array<CycleKind, 10> kRotation = {
    CycleKind::Shotgun,    CycleKind::Kill,  CycleKind::SingleError,
    CycleKind::Abort,      CycleKind::Kill,  CycleKind::Hang,
    CycleKind::TraceChaos, CycleKind::Kill,  CycleKind::SingleThrow,
    CycleKind::Shotgun,
};

/** Sweep-path sites for targeted single-site schedules. */
constexpr std::array<const char *, 6> kSweepSites = {
    "checkpoint.append", "checkpoint.open",     "checkpoint.replay",
    "harness.cell.attempt", "sim.loop",         "sim.build.alloc",
};

std::string
shotgunSpec(Rng &rng)
{
    std::string spec;
    for (const auto &site : failpoint::knownSites()) {
        if (!spec.empty())
            spec += ';';
        char buf[128];
        std::snprintf(buf, sizeof buf, "%s=prob(0.03,%llu)",
                      site.c_str(),
                      static_cast<unsigned long long>(rng.next()));
        spec += buf;
    }
    return spec;
}

struct SoakOptions
{
    std::uint64_t seed = 1;
    std::uint64_t cycles = 0; ///< 0 = one rotation minimum, then budget
    double timeBudgetS = 600.0;
    std::string outDir = "soak-out";
};

int
soakMain(const SoakOptions &opt)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "soak: cannot create out dir '%s': %s\n",
                     opt.outDir.c_str(), ec.message().c_str());
        return 1;
    }
    const std::string journal_path = opt.outDir + "/soak.journal";
    std::filesystem::remove(journal_path, ec);

    Rng rng(opt.seed);
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::printf("soak: seed=%llu out-dir=%s journal=%s\n",
                static_cast<unsigned long long>(opt.seed),
                opt.outDir.c_str(), journal_path.c_str());

    std::size_t violations = 0;
    auto violation = [&violations](const char *what,
                                   const std::string &detail) {
        ++violations;
        std::printf("soak: INVARIANT VIOLATED: %s: %s\n", what,
                    detail.c_str());
    };

    // The journal must reopen cleanly after every child death; torn
    // tails being repaired (with a warning) counts as clean.
    auto checkJournal = [&]() -> std::size_t {
        CheckpointJournal probe;
        if (Status s = probe.open(journal_path); !s.ok()) {
            violation("journal reopen", s.message());
            return 0;
        }
        return probe.completedCells();
    };

    const std::uint64_t max_cycles =
        opt.cycles == 0 ? 1'000'000 : opt.cycles;
    std::uint64_t cycle = 0;
    while (cycle < max_cycles &&
           (cycle < kRotation.size() || elapsed() < opt.timeBudgetS)) {
        // Each rotation after the first starts from an empty journal:
        // once every cell is checkpointed, sweeps restore instantly
        // and the chaos would stop touching the code under test.
        if (cycle > 0 && cycle % kRotation.size() == 0)
            std::filesystem::remove(journal_path, ec);
        const CycleKind kind = kRotation[cycle % kRotation.size()];
        std::string spec;
        double kill_after_s = 0.0;
        int kill_signo = 0;
        double cell_timeout_s = 0.0;
        unsigned retries = static_cast<unsigned>(rng.nextBounded(2));

        switch (kind) {
        case CycleKind::Shotgun:
            spec = shotgunSpec(rng);
            break;
        case CycleKind::Kill:
            kill_after_s =
                0.02 + 0.001 * static_cast<double>(rng.nextBounded(180));
            kill_signo = rng.nextBool(0.5) ? SIGKILL : SIGTERM;
            break;
        case CycleKind::SingleError:
        case CycleKind::SingleThrow: {
            const char *site =
                kSweepSites[rng.nextBounded(kSweepSites.size())];
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%s=%s(%llu)%s", site,
                rng.nextBool(0.5) ? "hit" : "every",
                static_cast<unsigned long long>(1 + rng.nextBounded(8)),
                kind == CycleKind::SingleThrow ? ":throw" : "");
            spec = buf;
            break;
        }
        case CycleKind::Abort: {
            const char *site =
                kSweepSites[rng.nextBounded(kSweepSites.size())];
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%s=hit(%llu):abort", site,
                static_cast<unsigned long long>(1 + rng.nextBounded(5)));
            spec = buf;
            break;
        }
        case CycleKind::Hang: {
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "sim.loop=hit(%llu):sleep(4000)",
                static_cast<unsigned long long>(3 + rng.nextBounded(30)));
            spec = buf;
            cell_timeout_s = 0.4;
            break;
        }
        case CycleKind::TraceChaos: {
            for (const char *site :
                 {"trace.open.write", "trace.write.header",
                  "trace.write.record", "trace.finalize",
                  "trace.open.read", "trace.read.header",
                  "trace.read.record", "metrics.json.write"}) {
                if (!spec.empty())
                    spec += ';';
                char buf[128];
                std::snprintf(
                    buf, sizeof buf, "%s=prob(0.10,%llu)", site,
                    static_cast<unsigned long long>(rng.next()));
                spec += buf;
            }
            break;
        }
        }

        int term_signal = 0;
        double wall_s = 0.0;
        int code;
        if (kind == CycleKind::TraceChaos) {
            code = runChild([&]() { childTrace(spec, opt.outDir); }, 0.0,
                            0, &term_signal, &wall_s);
        } else {
            code = runChild(
                [&]() {
                    childSweep(spec, journal_path, cell_timeout_s,
                               retries, "");
                },
                kill_after_s, kill_signo, &term_signal, &wall_s);
        }

        // Validate the death.
        bool death_ok;
        if (term_signal != 0) {
            death_ok = kind == CycleKind::Kill &&
                       term_signal == kill_signo;
        } else if (kind == CycleKind::Abort) {
            death_ok = code == 0 || code == 2 ||
                       code == kExitRecoverable ||
                       code == failpoint::kAbortExitCode;
        } else if (kind == CycleKind::Kill) {
            // The child may win the race and finish first.
            death_ok = code == 0 || code == 2;
        } else if (kind == CycleKind::TraceChaos) {
            death_ok = code == 0 || code == 2;
        } else {
            death_ok = code == 0 || code == 2 ||
                       code == kExitRecoverable;
        }

        char death[64];
        if (term_signal != 0) {
            std::snprintf(death, sizeof death, "killed by signal %d",
                          term_signal);
        } else {
            std::snprintf(death, sizeof death, "exit %d", code);
        }
        if (!death_ok) {
            violation("child death",
                      std::string(death) + " (kind " +
                          cycleKindName(kind) + ", spec '" + spec +
                          "')");
        }

        // A hang cycle must finish fast: the injected 4 s sleep has to
        // be cut short by the 0.4 s cell timeout's early wake-up.
        if (kind == CycleKind::Hang && wall_s > 3.5) {
            violation("hang reaping",
                      "cycle took " + std::to_string(wall_s) +
                          "s; the injected sleep was not cut short");
        }

        const std::size_t cells =
            kind == CycleKind::TraceChaos ? 0 : checkJournal();
        std::printf("soak: [%llu] %-12s %-7s wall=%.2fs journal=%zu "
                    "cells%s%s\n",
                    static_cast<unsigned long long>(cycle + 1),
                    cycleKindName(kind), death, wall_s, cells,
                    spec.empty() ? "" : " spec=", spec.c_str());
        std::fflush(stdout);
        ++cycle;
    }

    // Final invariant: resuming the battered journal must reproduce an
    // uninterrupted run's metric tree byte-for-byte (modulo wall-clock
    // noise stripped on both sides).
    const std::string resumed_json = opt.outDir + "/metrics_resumed.json";
    const std::string clean_json = opt.outDir + "/metrics_clean.json";
    const std::string clean_journal = opt.outDir + "/clean.journal";
    std::filesystem::remove(clean_journal, ec);

    int term_signal = 0;
    double wall_s = 0.0;
    int code = runChild(
        [&]() { childSweep("", journal_path, 0.0, 0, resumed_json); },
        0.0, 0, &term_signal, &wall_s);
    if (code != 0 || term_signal != 0) {
        violation("final resume pass",
                  "expected exit 0, got exit " + std::to_string(code) +
                      " signal " + std::to_string(term_signal));
    }
    code = runChild(
        [&]() { childSweep("", clean_journal, 0.0, 0, clean_json); },
        0.0, 0, &term_signal, &wall_s);
    if (code != 0 || term_signal != 0) {
        violation("clean reference pass",
                  "expected exit 0, got exit " + std::to_string(code) +
                      " signal " + std::to_string(term_signal));
    }

    if (violations == 0) {
        auto resumed = readMetricsJsonFile(resumed_json);
        auto clean = readMetricsJsonFile(clean_json);
        if (!resumed.ok() || !clean.ok()) {
            violation("metrics readback",
                      (resumed.ok() ? clean : resumed)
                          .status()
                          .message());
        } else {
            MetricsDocument a;
            a.name = "soak";
            a.metrics = stripNondeterministic(resumed->metrics);
            MetricsDocument b;
            b.name = "soak";
            b.metrics = stripNondeterministic(clean->metrics);
            const std::string ja = metricsToJson(a);
            const std::string jb = metricsToJson(b);
            if (ja != jb) {
                std::size_t at = 0;
                while (at < ja.size() && at < jb.size() &&
                       ja[at] == jb[at]) {
                    ++at;
                }
                violation(
                    "resume byte-identity",
                    "resumed and clean metric trees differ at byte " +
                        std::to_string(at) + " (see " + resumed_json +
                        " vs " + clean_json + ")");
            } else {
                std::printf("soak: resumed metric tree is "
                            "byte-identical to the clean run's "
                            "(%zu bytes)\n",
                            ja.size());
            }
        }
    }

    std::printf("soak: %llu cycle(s), %.1fs, %zu violation(s) -> %s\n",
                static_cast<unsigned long long>(cycle), elapsed(),
                violations, violations == 0 ? "PASS" : "FAIL");
    return violations == 0 ? 0 : 1;
}

void
usage()
{
    std::printf(
        "usage: cachescope-soak [--seed N] [--cycles N]\n"
        "                       [--time-budget-s S] [--out-dir DIR]\n"
        "\n"
        "Chaos-soaks the sweep harness: forked sweeps under randomized\n"
        "failpoint schedules and kill/resume cycles against one shared\n"
        "checkpoint journal, then checks that resuming it reproduces\n"
        "an uninterrupted run byte-for-byte. --cycles 0 (default) runs\n"
        "full rotations of all cycle kinds until the time budget is\n"
        "spent. Exit 0 = all invariants held.\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SoakOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "soak: %s needs a value\n",
                             key.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (key == "--help" || key == "-h") {
            usage();
            return 0;
        } else if (key == "--seed") {
            auto parsed = parseU64(value());
            if (!parsed.ok()) {
                std::fprintf(stderr, "soak: --seed: %s\n",
                             parsed.status().message().c_str());
                return 1;
            }
            opt.seed = parsed.take();
        } else if (key == "--cycles") {
            auto parsed = parseU64(value());
            if (!parsed.ok()) {
                std::fprintf(stderr, "soak: --cycles: %s\n",
                             parsed.status().message().c_str());
                return 1;
            }
            opt.cycles = parsed.take();
        } else if (key == "--time-budget-s") {
            auto parsed = parseF64NonNegative(value());
            if (!parsed.ok()) {
                std::fprintf(stderr, "soak: --time-budget-s: %s\n",
                             parsed.status().message().c_str());
                return 1;
            }
            opt.timeBudgetS = parsed.take();
        } else if (key == "--out-dir") {
            opt.outDir = value();
        } else {
            std::fprintf(stderr, "soak: unknown flag '%s'\n",
                         key.c_str());
            usage();
            return 1;
        }
    }
    return soakMain(opt);
}
