/**
 * @file
 * The cachescope command-line driver — the front door for downstream
 * users who want simulations without writing C++.
 *
 * Subcommands:
 *   policies                     list replacement policies/prefetchers
 *   run      --workload W ...    simulate one workload, print stats
 *   sweep    --suite S ...       workload x policy grid + speedups
 *   capture  --workload W --out F  record a binary trace
 *   replay   --trace F ...       simulate from a trace file
 *
 * Run `cachescope <subcommand> --help` (or no arguments) for the
 * option list.
 *
 * Exit codes: 0 success; 1 bad input (flags, configuration, unusable
 * trace); 2 a sweep finished but one or more cells failed (the table
 * of successful cells and a failure summary are still printed);
 * 130/143 interrupted by SIGINT/SIGTERM after in-flight cells were
 * cooperatively cancelled and completed work was checkpointed.
 */

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <algorithm>

#include "core/cascade_lake.hh"
#include "harness/checkpoint.hh"
#include "harness/corun.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/workload_zoo.hh"
#include "stats/metrics.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"
#include "util/cancel.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace cachescope;

namespace {

/**
 * Fired by the SIGINT/SIGTERM handler; sweeps chain to it so ^C stops
 * scheduling new cells and cooperatively unwinds in-flight ones while
 * completed work still reaches the checkpoint journal.
 */
CancelToken g_signalToken;
/** The delivered signal number (0 = none), for the 128+N exit code. */
std::atomic<int> g_signalNumber{0};

extern "C" void
onTerminationSignal(int signo)
{
    // Async-signal-safe: one relaxed store + one CAS, no allocation,
    // no locks, no stdio.
    g_signalNumber.store(signo, std::memory_order_relaxed);
    g_signalToken.requestCancel(CancelReason::Signal);
}

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onTerminationSignal;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND: the first signal requests a graceful stop; a
    // second one gets the default disposition and kills immediately,
    // so an operator is never trapped behind a wedged shutdown.
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/** Tiny flag parser: --key value pairs plus boolean --key. */
class Args
{
  public:
    // GCC 12 reports a spurious -Wrestrict (PR105329) when it inlines
    // these map inserts into main; the copies are tiny and disjoint.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                fatal("unexpected argument '%s'", argv[i]);
            const std::string key(argv[i] + 2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values.insert_or_assign(key, argv[++i]);
            } else {
                values.insert_or_assign(key, "1");
            }
        }
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        auto parsed = parseU64(it->second);
        if (!parsed.ok()) {
            fatal("flag --%s: %s", key.c_str(),
                  parsed.status().message().c_str());
        }
        return parsed.take();
    }

    /**
     * Strictly parsed non-negative seconds (fractions allowed);
     * rejects negatives, inf/nan, and trailing garbage via
     * parseF64NonNegative rather than silently truncating.
     */
    double
    getSeconds(const std::string &key, double fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        auto parsed = parseF64NonNegative(it->second);
        if (!parsed.ok()) {
            fatal("flag --%s: %s", key.c_str(),
                  parsed.status().message().c_str());
        }
        return parsed.take();
    }

    bool has(const std::string &key) const { return values.count(key); }

  private:
    std::map<std::string, std::string> values;
};

/** Wall-clock stopwatch for --metrics-json timing. */
class WallTimer
{
  public:
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
};

/**
 * Honour --metrics-json FILE: dump @p metrics as a
 * cachescope-metrics-v1 document. @return 0, or 1 on write failure.
 */
int
emitMetricsJson(const Args &args, const std::string &name, double wall_ms,
                const MetricsRegistry &metrics)
{
    if (!args.has("metrics-json"))
        return 0;
    MetricsDocument doc;
    doc.name = name;
    doc.wallMs = wall_ms;
    doc.metrics = metrics;
    const std::string path = args.get("metrics-json", "metrics.json");
    if (Status s = writeMetricsJsonFile(doc, path); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.message().c_str());
        return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", path.c_str());
    return 0;
}

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > pos)
            items.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

ZooOptions
zooOptionsFrom(const Args &args)
{
    ZooOptions options;
    options.scale = static_cast<unsigned>(args.getU64("scale", 19));
    options.avgDegree = static_cast<unsigned>(args.getU64("degree", 8));
    options.seed = args.getU64("seed", 42);
    options.uniformGraph = args.has("uniform");
    options.synthMainBytes = args.getU64("synth-mb", 8) << 20;
    return options;
}

SimConfig
configFrom(const Args &args, const std::string &policy)
{
    SimConfig cfg = cascadeLakeConfig(
        policy, args.getU64("warmup", 500'000),
        args.getU64("measure", 5'000'000));
    if (args.has("llc-kb")) {
        cfg.hierarchy.llc.sizeBytes = args.getU64("llc-kb", 1408) * 1024;
    }
    cfg.hierarchy.l2.prefetcher = args.get("prefetcher", "none");
    // --warmup-mode functional skips core/DRAM timing until the warmup
    // boundary (measured cache counters stay bit-identical to timed).
    const std::string warmup_mode = args.get("warmup-mode", "timed");
    if (warmup_mode == "functional")
        cfg.warmupMode = WarmupMode::Functional;
    else if (warmup_mode != "timed")
        fatal("flag --warmup-mode: expected 'timed' or 'functional', "
              "got '%s'", warmup_mode.c_str());
    // --sample-sets N (or the paper-style "1/N" spelling): simulate a
    // deterministic 1-in-N subset of LLC sets; estimates land under
    // llc.sampled.*. Validation of N (power of two <= set count)
    // happens in CacheConfig::validate.
    if (args.has("sample-sets")) {
        std::string spec = args.get("sample-sets", "1");
        if (spec.rfind("1/", 0) == 0)
            spec = spec.substr(2);
        char *end = nullptr;
        const unsigned long long n = std::strtoull(spec.c_str(), &end, 10);
        if (end == spec.c_str() || *end != '\0' || n == 0 ||
            n > (1ull << 31)) {
            fatal("flag --sample-sets: expected N or 1/N with N in "
                  "[1, 2^31], got '%s'",
                  args.get("sample-sets", "1").c_str());
        }
        cfg.hierarchy.llc.sampleSets = static_cast<std::uint32_t>(n);
    }
    // --profile (every set) or --profile N (1-in-N set sampling).
    // Parsed here so run, sweep, replay and corun all honour it.
    if (args.has("profile")) {
        const std::uint64_t rate = args.getU64("profile", 1);
        if (rate == 0 || rate > (1ull << 31))
            fatal("flag --profile: sample rate must be in [1, 2^31]");
        cfg.profile.enabled = true;
        cfg.profile.sampleRate = static_cast<std::uint32_t>(rate);
    }
    return cfg;
}

/** One-line human summary of a run's profile.* subtree (if present). */
void
printProfileSummary(const MetricsRegistry &metrics)
{
    if (!metrics.hasCounter("profile.demand_accesses"))
        return;
    std::printf(
        "profile: %llu distinct LLC PCs; top-8 cover %.1f%% of demand "
        "accesses (%llu PC(s) for 90%%); footprint ~%llu blocks; "
        "pc entropy %.2f bits (1-in-%llu sets)\n",
        static_cast<unsigned long long>(
            metrics.counter("profile.distinct_pcs")),
        metrics.gauge("profile.concentration.top_8") * 100.0,
        static_cast<unsigned long long>(
            metrics.counter("profile.pcs_for_90pct")),
        static_cast<unsigned long long>(
            metrics.counter("profile.footprint_blocks")),
        metrics.gauge("profile.pc_entropy_bits"),
        static_cast<unsigned long long>(
            metrics.counter("profile.sample_rate")));
}

int
cmdPolicies()
{
    std::printf("replacement policies:");
    for (const auto &name : ReplacementPolicyFactory::availablePolicies())
        std::printf(" %s", name.c_str());
    std::printf(" belady(offline)\nprefetchers: none");
    for (const auto &name : availablePrefetchers())
        std::printf(" %s", name.c_str());
    std::printf("\nworkloads:");
    for (const auto &name : zooWorkloadNames())
        std::printf(" %s", name.c_str());
    std::printf("\nsuites: gap spec06 spec17\n");
    return 0;
}

int
cmdRun(const Args &args)
{
    const std::string policy = args.get("policy", "lru");
    auto workload_or = tryMakeNamedWorkload(args.get("workload", "bfs"),
                                            zooOptionsFrom(args));
    if (!workload_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     workload_or.status().message().c_str());
        return 1;
    }
    auto workload = workload_or.take();
    const SimConfig cfg =
        configFrom(args, policy == "belady" ? "lru" : policy);
    if (Status valid = cfg.validate(); !valid.ok()) {
        std::fprintf(stderr, "error: %s\n", valid.message().c_str());
        return 1;
    }
    std::fprintf(stderr, "running %s under %s...\n",
                 workload->name().c_str(), policy.c_str());
    const WallTimer timer;
    const SimResult r = policy == "belady" ? runBelady(*workload, cfg)
                                           : runOne(*workload, cfg);
    const double wall_ms = timer.elapsedMs();
    printSimResult(r, std::cout);
    if (!r.llcPolicyState.empty()) {
        std::printf("llc policy state: %s\n",
                    r.llcPolicyState.c_str());
    }
    {
        const auto &gauges = r.extraMetrics.gauges();
        const auto mips = gauges.find("sim.throughput_mips");
        std::printf("wall-clock: %.1f ms (%.1f simulated MIPS)\n",
                    wall_ms,
                    mips == gauges.end() ? 0.0 : mips->second);
    }
    MetricsRegistry metrics;
    r.exportMetrics(metrics);
    printProfileSummary(metrics);
    return emitMetricsJson(
        args, "run:" + workload->name() + ":" + policy, wall_ms, metrics);
}

int
cmdSweep(const Args &args)
{
    auto suite_or = tryMakeNamedSuite(args.get("suite", "gap"),
                                      zooOptionsFrom(args));
    if (!suite_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     suite_or.status().message().c_str());
        return 1;
    }
    const auto suite = suite_or.take();

    std::vector<std::string> policies = {"lru"};
    {
        const std::string list =
            args.get("policies", "srrip,drrip,ship,hawkeye,glider,mpppb");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string name = list.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            if (!name.empty() && name != "lru")
                policies.push_back(name);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    SuiteRunner runner(configFrom(args, "lru"),
                       static_cast<unsigned>(args.getU64("jobs", 0)));
    runner.setRetries(static_cast<unsigned>(args.getU64("retries", 0)));
    // --fast-sweep: functional warmup + 1/16 LLC set-sampling per cell
    // (an explicit --sample-sets > 1 overrides the preset's 16).
    runner.setFastSweep(args.has("fast-sweep"));
    runner.setCellTimeout(args.getSeconds("cell-timeout-s", 0.0));
    runner.setSweepDeadline(args.getSeconds("deadline-s", 0.0));
    runner.setCancelToken(&g_signalToken);

    CheckpointJournal journal;
    if (args.has("checkpoint")) {
        const std::string path = args.get("checkpoint", "");
        journal.setSync(args.has("checkpoint-sync"));
        if (Status s = journal.open(path); !s.ok()) {
            std::fprintf(stderr, "error: %s\n", s.message().c_str());
            return 1;
        }
        if (journal.completedCells() > 0) {
            std::fprintf(stderr,
                         "resuming from '%s': %zu cell(s) already "
                         "complete\n",
                         path.c_str(), journal.completedCells());
        }
        runner.setCheckpoint(&journal);
    }

    const WallTimer timer;
    const SweepReport report = runner.runChecked(suite, policies);
    const double wall_ms = timer.elapsedMs();
    const SweepResults &results = report.results;

    // Render every workload that produced at least one result; cells
    // whose run failed (or whose LRU baseline is missing) print "-".
    std::vector<std::string> columns = {"workload", "lru_ipc"};
    for (std::size_t i = 1; i < policies.size(); ++i)
        columns.push_back(policies[i]);
    Table table(columns);
    for (const auto &[workload, by_policy] : results) {
        table.newRow();
        table.addCell(workload);
        const auto lru = by_policy.find("lru");
        if (lru == by_policy.end())
            table.addCell("-");
        else
            table.addNumber(lru->second.ipc(), 3);
        for (std::size_t i = 1; i < policies.size(); ++i) {
            const auto p = by_policy.find(policies[i]);
            if (p == by_policy.end() || lru == by_policy.end() ||
                lru->second.ipc() <= 0.0) {
                table.addCell("-");
            } else {
                table.addNumber(p->second.ipc() / lru->second.ipc(), 4);
            }
        }
    }
    table.newRow();
    table.addCell("geomean");
    table.addCell("-");
    for (std::size_t i = 1; i < policies.size(); ++i)
        table.addNumber(geomeanSpeedup(results, policies[i]), 4);
    table.printAscii(std::cout);

    // Total wall-clock and aggregate simulated MIPS (instructions
    // simulated in this process / sweep wall time; checkpoint-restored
    // cells did their work in an earlier process and are excluded).
    {
        double instructions = 0.0;
        std::size_t simulated = 0;
        for (const auto &outcome : report.outcomes) {
            if (!outcome.ok || outcome.fromCheckpoint)
                continue;
            const auto &gauges = outcome.result.extraMetrics.gauges();
            const auto secs = gauges.find("sim.wall_seconds");
            const auto mips = gauges.find("sim.throughput_mips");
            if (secs == gauges.end() || mips == gauges.end())
                continue;
            instructions += mips->second * 1e6 * secs->second;
            ++simulated;
        }
        std::printf("sweep wall-clock: %.1f s, %zu cell(s) simulated "
                    "(aggregate %.1f simulated MIPS)\n",
                    wall_ms / 1000.0, simulated,
                    wall_ms > 0.0 ? instructions / (wall_ms * 1000.0)
                                  : 0.0);
    }

    if (int rc = emitMetricsJson(args, "sweep:" + args.get("suite", "gap"),
                                 wall_ms, report.metrics);
        rc != 0) {
        return rc;
    }

    if (!report.allOk()) {
        std::fprintf(stderr, "\n%zu of %zu cell(s) FAILED:\n",
                     report.failed(), report.outcomes.size());
        for (const auto &outcome : report.outcomes) {
            if (!outcome.ok) {
                std::fprintf(stderr, "  %s/%s: %s\n",
                             outcome.workload.c_str(),
                             outcome.policy.c_str(),
                             outcome.error.c_str());
            }
        }
    }

    // A termination signal trumps the failed-cells code: 128+N tells
    // the caller the sweep was interrupted, and the stderr summary
    // says how much of it survives in the journal for --checkpoint
    // resumption.
    if (const int signo = g_signalNumber.load(); signo != 0) {
        std::size_t done = 0;
        for (const auto &outcome : report.outcomes)
            if (outcome.ok)
                ++done;
        std::fprintf(stderr,
                     "\ninterrupted by %s: %zu of %zu cell(s) "
                     "complete%s\n",
                     signo == SIGINT ? "SIGINT" : "SIGTERM", done,
                     report.outcomes.size(),
                     args.has("checkpoint")
                         ? " and checkpointed; re-run with the same "
                           "--checkpoint to resume"
                         : " (no --checkpoint: progress is lost)");
        return 128 + signo;
    }
    return report.allOk() ? 0 : 2;
}

int
cmdCorun(const Args &args)
{
    const std::string spec = args.get("cores", "");
    if (spec.empty()) {
        std::fprintf(stderr,
                     "error: corun needs --cores t1,t2,... (zoo "
                     "workload names or trace paths, one per core)\n");
        return 1;
    }
    const std::vector<std::string> names = splitCsv(spec);

    // Each --cores item is a zoo workload if the zoo knows the name,
    // otherwise a trace file path.
    const std::vector<std::string> &zoo = zooWorkloadNames();
    std::vector<CorunTenant> tenants;
    for (const std::string &name : names) {
        if (std::find(zoo.begin(), zoo.end(), name) != zoo.end()) {
            auto workload_or =
                tryMakeNamedWorkload(name, zooOptionsFrom(args));
            if (!workload_or.ok()) {
                std::fprintf(stderr, "error: %s\n",
                             workload_or.status().message().c_str());
                return 1;
            }
            tenants.push_back(
                CorunTenant::fromWorkload(workload_or.take()));
        } else {
            tenants.push_back(CorunTenant::fromTrace(name));
        }
    }

    const std::string policy = args.get("policy", "lru");
    CorunRunOptions options;
    options.config.base = configFrom(args, policy);
    options.config.llcWaysPerCore =
        static_cast<std::uint32_t>(args.getU64("llc-ways-per-core", 0));
    options.config.tagStreams = !args.has("no-tag");
    options.soloBaselines = args.has("baselines");

    std::fprintf(stderr, "co-running %zu tenant(s) under %s...\n",
                 tenants.size(), policy.c_str());
    const WallTimer timer;
    auto report_or = runCorun(tenants, options);
    if (!report_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report_or.status().message().c_str());
        return 1;
    }
    const CorunReport report = report_or.take();
    const double wall_ms = timer.elapsedMs();

    std::vector<std::string> columns = {"core", "tenant", "instructions",
                                        "ipc", "llc_mpki"};
    if (options.soloBaselines)
        columns.push_back("vs_solo");
    Table table(columns);
    for (std::size_t i = 0; i < report.result.cores.size(); ++i) {
        const SimResult &core = report.result.cores[i];
        table.newRow();
        table.addCell(std::to_string(i));
        table.addCell(report.tenantNames[i]);
        table.addCell(std::to_string(core.core.instructions));
        table.addNumber(core.ipc(), 3);
        table.addNumber(mpki(report.result.llcPerCore[i].demandMisses(),
                             core.core.instructions),
                        2);
        if (options.soloBaselines) {
            const double solo = report.soloIpc[i];
            if (solo > 0.0)
                table.addNumber(core.ipc() / solo, 4);
            else
                table.addCell("-");
        }
    }
    table.printAscii(std::cout);

    std::printf("aggregate ipc: %.3f\n", report.result.ipcSum());
    if (options.soloBaselines && report.result.cores.size() >= 2) {
        std::printf("weighted speedup: %.3f  fairness: %.3f\n",
                    report.weightedSpeedup, report.fairness);
    }
    std::printf("wall-clock: %.1f ms (%.1f simulated MIPS)\n", wall_ms,
                report.throughputMips);

    MetricsRegistry metrics;
    report.exportMetrics(metrics);
    printProfileSummary(metrics);
    return emitMetricsJson(args, "corun:" + policy, wall_ms, metrics);
}

int
cmdCapture(const Args &args)
{
    const std::string path = args.get("out", "cachescope.trace");
    const std::uint64_t records = args.getU64("records", 10'000'000);
    auto workload_or = tryMakeNamedWorkload(args.get("workload", "bfs"),
                                            zooOptionsFrom(args));
    if (!workload_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     workload_or.status().message().c_str());
        return 1;
    }
    auto workload = workload_or.take();

    auto writer_or = TraceWriter::open(path);
    if (!writer_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     writer_or.status().message().c_str());
        return 1;
    }
    TraceWriter &writer = *writer_or.value();
    struct Bounded : InstructionSink
    {
        Bounded(TraceWriter &writer, std::uint64_t budget)
            : out(writer), budget(budget)
        {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            out.onInstruction(rec);
        }
        bool
        wantsMore() const override
        {
            // Stop producing on writer errors too (e.g. a full disk);
            // finish() below reports the failure.
            return out.status().ok() && out.recordsWritten() < budget;
        }
        TraceWriter &out;
        std::uint64_t budget;
    } sink(writer, records);
    workload->run(sink);
    if (Status s = writer.finish(); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.message().c_str());
        return 1;
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                path.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace", "cachescope.trace");
    const SimConfig cfg = configFrom(args, args.get("policy", "lru"));
    if (Status valid = cfg.validate(); !valid.ok()) {
        std::fprintf(stderr, "error: %s\n", valid.message().c_str());
        return 1;
    }
    auto reader_or = TraceReader::open(path);
    if (!reader_or.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     reader_or.status().message().c_str());
        return 1;
    }
    Simulator sim(cfg);
    std::uint64_t replayed = 0;
    const WallTimer timer;
    if (Status s = reader_or.value()->replayInto(sim, &replayed);
        !s.ok()) {
        std::fprintf(stderr,
                     "error: %s\n(no statistics printed: a partial "
                     "replay would misreport the workload)\n",
                     s.message().c_str());
        return 1;
    }
    const double wall_ms = timer.elapsedMs();
    const double mips = wall_ms > 0.0
        ? static_cast<double>(sim.instructionsConsumed()) /
          (wall_ms * 1000.0)
        : 0.0;
    std::fprintf(stderr, "replayed %llu records in %.2f s "
                 "(%.1f simulated MIPS)\n",
                 static_cast<unsigned long long>(replayed),
                 wall_ms / 1000.0, mips);
    if (cfg.warmupInstructions > 0 && !sim.inMeasurement()) {
        warn("trace '%s' ended after %llu of %llu warmup instructions; "
             "the measured window is empty",
             path.c_str(),
             static_cast<unsigned long long>(sim.instructionsConsumed()),
             static_cast<unsigned long long>(cfg.warmupInstructions));
    }
    const SimResult r = sim.result();
    printSimResult(r, std::cout);
    MetricsRegistry metrics;
    r.exportMetrics(metrics);
    metrics.setCounter("replay.records", replayed);
    const double secs = wall_ms / 1000.0;
    const double measure =
        std::min(std::max(sim.measureWallSeconds(), 0.0), secs);
    metrics.setGauge("sim.wall_seconds", secs);
    metrics.setGauge("sim.warmup_wall_seconds", secs - measure);
    metrics.setGauge("sim.measure_wall_seconds", measure);
    metrics.setGauge("sim.throughput_mips", mips);
    printProfileSummary(metrics);
    return emitMetricsJson(args, "replay:" + args.get("policy", "lru"),
                           wall_ms, metrics);
}

void
usage()
{
    std::printf(
        "usage: cachescope <subcommand> [--flag value ...]\n"
        "\n"
        "subcommands:\n"
        "  policies                         list policies/workloads\n"
        "  run     --workload W --policy P  simulate one workload\n"
        "  sweep   --suite S --policies a,b workload x policy grid\n"
        "  corun   --cores t1,t2,...        co-run tenants over one\n"
        "                                   shared LLC (each item is a\n"
        "                                   workload name or trace path)\n"
        "  capture --workload W --out FILE  record a binary trace\n"
        "  replay  --trace FILE --policy P  simulate from a trace\n"
        "\n"
        "common flags: --scale N --degree N --seed N --uniform\n"
        "              --warmup N --measure N --llc-kb N\n"
        "              --warmup-mode timed|functional (functional\n"
        "               warms caches/predictors without core or DRAM\n"
        "               timing; measured cache counters are identical,\n"
        "               warmup wall time shrinks)\n"
        "              --sample-sets N|1/N (simulate a deterministic\n"
        "               1-in-N subset of LLC sets; scaled estimates\n"
        "               and an error gauge land under llc.sampled.*)\n"
        "              --prefetcher none|next_line|stride|streamer\n"
        "              --profile [N] (attach the online PC/address-\n"
        "               correlation profiler to the LLC: per-PC\n"
        "               footprints, reuse distances, entropy and\n"
        "               concentration under profile.*; N = profile\n"
        "               1-in-N sets, default 1 = every set)\n"
        "              --metrics-json FILE (run/sweep/replay: dump the\n"
        "               full counter tree as cachescope-metrics-v1)\n"
        "corun flags:  --llc-ways-per-core K (static way partition:\n"
        "               core c fills ways [c*K,(c+1)*K); 0 = shared)\n"
        "              --baselines (also run each tenant alone and\n"
        "               report weighted speedup and fairness)\n"
        "              --no-tag (do not tag per-core address spaces;\n"
        "               identical tenants then share lines and PCs)\n"
        "sweep flags:  --jobs N --retries N --checkpoint FILE\n"
        "              --fast-sweep (two-speed preset: functional\n"
        "               warmup + 1/16 LLC set-sampling per cell)\n"
        "              (--checkpoint resumes an interrupted sweep,\n"
        "               skipping cells the journal says are complete)\n"
        "              --checkpoint-sync (fsync the journal after\n"
        "               every record: survives machine crashes, not\n"
        "               just process kills)\n"
        "              --cell-timeout-s S (reap any cell past S\n"
        "               seconds as a failed outcome; fractions ok)\n"
        "              --deadline-s S (cancel the whole sweep after S\n"
        "               seconds; finished cells keep their results)\n"
        "debug flags:  --failpoints SPEC (deterministic fault\n"
        "               injection, e.g. 'checkpoint.append=every(3)';\n"
        "               also read from $CACHESCOPE_FAILPOINTS)\n"
        "\n"
        "exit codes: 0 ok; 1 bad input; 2 sweep had failed cells;\n"
        "            130/143 interrupted by SIGINT/SIGTERM (in-flight\n"
        "            cells cancelled, completed cells checkpointed)\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);

    // Fault injection: the environment arms sites first so wrapper
    // scripts can inject without touching flags; an explicit
    // --failpoints then replaces that configuration entirely.
    if (Status s = failpoint::configureFromEnv(); !s.ok())
        fatal("$CACHESCOPE_FAILPOINTS: %s", s.message().c_str());
    if (args.has("failpoints")) {
        if (Status s = failpoint::configure(args.get("failpoints", ""));
            !s.ok()) {
            fatal("--failpoints: %s", s.message().c_str());
        }
    }
    installSignalHandlers();

    if (cmd == "policies")
        return cmdPolicies();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "corun")
        return cmdCorun(args);
    if (cmd == "capture")
        return cmdCapture(args);
    if (cmd == "replay")
        return cmdReplay(args);
    usage();
    return cmd == "--help" || cmd == "help" ? 0 : 1;
}
