/**
 * @file
 * The cachescope command-line driver — the front door for downstream
 * users who want simulations without writing C++.
 *
 * Subcommands:
 *   policies                     list replacement policies/prefetchers
 *   run      --workload W ...    simulate one workload, print stats
 *   sweep    --suite S ...       workload x policy grid + speedups
 *   capture  --workload W --out F  record a binary trace
 *   replay   --trace F ...       simulate from a trace file
 *
 * Run `cachescope <subcommand> --help` (or no arguments) for the
 * option list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/workload_zoo.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

using namespace cachescope;

namespace {

/** Tiny flag parser: --key value pairs plus boolean --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                fatal("unexpected argument '%s'", key.c_str());
            key = key.substr(2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values[key] = argv[++i];
            } else {
                values[key] = "1";
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values.find(key);
        return it == values.end()
            ? fallback
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    bool has(const std::string &key) const { return values.count(key); }

  private:
    std::map<std::string, std::string> values;
};

ZooOptions
zooOptionsFrom(const Args &args)
{
    ZooOptions options;
    options.scale = static_cast<unsigned>(args.getU64("scale", 19));
    options.avgDegree = static_cast<unsigned>(args.getU64("degree", 8));
    options.seed = args.getU64("seed", 42);
    options.uniformGraph = args.has("uniform");
    options.synthMainBytes = args.getU64("synth-mb", 8) << 20;
    return options;
}

SimConfig
configFrom(const Args &args, const std::string &policy)
{
    SimConfig cfg = cascadeLakeConfig(
        policy, args.getU64("warmup", 500'000),
        args.getU64("measure", 5'000'000));
    if (args.has("llc-kb")) {
        cfg.hierarchy.llc.sizeBytes = args.getU64("llc-kb", 1408) * 1024;
    }
    cfg.hierarchy.l2.prefetcher = args.get("prefetcher", "none");
    return cfg;
}

int
cmdPolicies()
{
    std::printf("replacement policies:");
    for (const auto &name : ReplacementPolicyFactory::availablePolicies())
        std::printf(" %s", name.c_str());
    std::printf(" belady(offline)\nprefetchers: none");
    for (const auto &name : availablePrefetchers())
        std::printf(" %s", name.c_str());
    std::printf("\nworkloads:");
    for (const auto &name : zooWorkloadNames())
        std::printf(" %s", name.c_str());
    std::printf("\nsuites: gap spec06 spec17\n");
    return 0;
}

int
cmdRun(const Args &args)
{
    const std::string policy = args.get("policy", "lru");
    auto workload =
        makeNamedWorkload(args.get("workload", "bfs"), zooOptionsFrom(args));
    std::fprintf(stderr, "running %s under %s...\n",
                 workload->name().c_str(), policy.c_str());
    const SimResult r = policy == "belady"
        ? runBelady(*workload, configFrom(args, "lru"))
        : runOne(*workload, configFrom(args, policy));
    printSimResult(r, std::cout);
    if (!r.llcPolicyState.empty()) {
        std::printf("llc policy state: %s\n",
                    r.llcPolicyState.c_str());
    }
    return 0;
}

int
cmdSweep(const Args &args)
{
    auto suite = makeNamedSuite(args.get("suite", "gap"),
                                zooOptionsFrom(args));

    std::vector<std::string> policies = {"lru"};
    {
        const std::string list =
            args.get("policies", "srrip,drrip,ship,hawkeye,glider,mpppb");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string name = list.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            if (!name.empty() && name != "lru")
                policies.push_back(name);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    SuiteRunner runner(configFrom(args, "lru"),
                       static_cast<unsigned>(args.getU64("jobs", 0)));
    const SweepResults results = runner.run(suite, policies);

    std::vector<std::string> columns = {"workload", "lru_ipc"};
    for (std::size_t i = 1; i < policies.size(); ++i)
        columns.push_back(policies[i]);
    Table table(columns);
    for (const auto &[workload, by_policy] : results) {
        table.newRow();
        table.addCell(workload);
        table.addNumber(by_policy.at("lru").ipc(), 3);
        for (std::size_t i = 1; i < policies.size(); ++i) {
            table.addNumber(by_policy.at(policies[i]).ipc() /
                            by_policy.at("lru").ipc(), 4);
        }
    }
    table.newRow();
    table.addCell("geomean");
    table.addCell("-");
    for (std::size_t i = 1; i < policies.size(); ++i)
        table.addNumber(geomeanSpeedup(results, policies[i]), 4);
    table.printAscii(std::cout);
    return 0;
}

int
cmdCapture(const Args &args)
{
    const std::string path = args.get("out", "cachescope.trace");
    const std::uint64_t records = args.getU64("records", 10'000'000);
    auto workload =
        makeNamedWorkload(args.get("workload", "bfs"), zooOptionsFrom(args));

    TraceWriter writer(path);
    struct Bounded : InstructionSink
    {
        Bounded(TraceWriter &writer, std::uint64_t budget)
            : out(writer), budget(budget)
        {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            out.onInstruction(rec);
        }
        bool
        wantsMore() const override
        {
            return out.recordsWritten() < budget;
        }
        TraceWriter &out;
        std::uint64_t budget;
    } sink(writer, records);
    workload->run(sink);
    writer.onEnd();
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                path.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace", "cachescope.trace");
    Simulator sim(configFrom(args, args.get("policy", "lru")));
    TraceReader reader(path);
    const std::uint64_t replayed = reader.replayInto(sim);
    std::fprintf(stderr, "replayed %llu records\n",
                 static_cast<unsigned long long>(replayed));
    printSimResult(sim.result(), std::cout);
    return 0;
}

void
usage()
{
    std::printf(
        "usage: cachescope <subcommand> [--flag value ...]\n"
        "\n"
        "subcommands:\n"
        "  policies                         list policies/workloads\n"
        "  run     --workload W --policy P  simulate one workload\n"
        "  sweep   --suite S --policies a,b workload x policy grid\n"
        "  capture --workload W --out FILE  record a binary trace\n"
        "  replay  --trace FILE --policy P  simulate from a trace\n"
        "\n"
        "common flags: --scale N --degree N --seed N --uniform\n"
        "              --warmup N --measure N --llc-kb N\n"
        "              --prefetcher none|next_line|stride|streamer\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "policies")
        return cmdPolicies();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "capture")
        return cmdCapture(args);
    if (cmd == "replay")
        return cmdReplay(args);
    usage();
    return cmd == "--help" || cmd == "help" ? 0 : 1;
}
