/**
 * @file
 * Graph-analytics scenario: characterize how one graph workload
 * stresses the memory hierarchy, the way the paper's section I-D does.
 *
 * Builds a social-network-like Kronecker graph and a uniform-random
 * graph, then for each: profiles the PC/address structure of a
 * PageRank run (the paper's "few PCs, huge fan-out" evidence) and
 * simulates it on the Cascade Lake hierarchy, reporting MPKI and the
 * L1D-miss-to-DRAM ratio.
 *
 * Usage: graph_analytics [scale] [avg_degree]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/cascade_lake.hh"
#include "graph/gap_kernels.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "trace/profile.hh"

using namespace cachescope;

namespace {

/** Profile the first few million instructions of a workload. */
PcProfileSummary
profileWorkload(Workload &workload, std::uint64_t budget)
{
    struct Bounded : PcProfiler
    {
        explicit Bounded(std::uint64_t budget) : budget(budget) {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            PcProfiler::onInstruction(rec);
            ++seen;
        }
        bool wantsMore() const override { return seen < budget; }
        std::uint64_t budget;
        std::uint64_t seen = 0;
    } profiler(budget);
    workload.run(profiler);
    return profiler.summarize();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const unsigned scale = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1])) : 18;
    const unsigned degree = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 8;

    struct Input
    {
        const char *tag;
        std::shared_ptr<const CsrGraph> graph;
    };
    std::vector<Input> inputs = {
        {"kron", std::make_shared<const CsrGraph>(
                     makeKronecker(scale, degree, 42))},
        {"urand", std::make_shared<const CsrGraph>(
                      makeUniform(scale, degree, 43))},
    };

    for (const auto &input : inputs) {
        const CsrGraph &g = *input.graph;
        NodeId max_deg = 0;
        for (NodeId v = 0; v < g.numNodes(); ++v)
            max_deg = std::max(max_deg, g.degree(v));
        std::printf("\n--- %s%u: %u vertices, %llu edges, max degree %u\n",
                    input.tag, scale, g.numNodes(),
                    static_cast<unsigned long long>(g.numEdges()),
                    max_deg);

        GapWorkload workload(GapKernel::PageRank, input.tag, input.graph,
                             {});

        const PcProfileSummary prof =
            profileWorkload(workload, 2'000'000);
        std::printf("PC structure of pr.%s: %llu memory PCs, "
                    "mean %.0f / max %llu blocks per PC, "
                    "%llu PCs carry 90%% of traffic\n",
                    input.tag,
                    static_cast<unsigned long long>(prof.distinctMemoryPcs),
                    prof.meanBlocksPerPc,
                    static_cast<unsigned long long>(prof.maxBlocksPerPc),
                    static_cast<unsigned long long>(
                        prof.pcsFor90PctAccesses));

        const SimResult r = runOne(
            workload, cascadeLakeConfig("lru", 500'000, 5'000'000));
        printSimResult(r, std::cout);
    }
    return 0;
}
