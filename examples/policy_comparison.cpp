/**
 * @file
 * Policy-comparison scenario: run one workload under every registered
 * LLC replacement policy plus the offline Belady oracle, and rank them
 * by IPC — the per-cell view behind the paper's Fig. 3.
 *
 * Usage: policy_comparison [workload] [scale]
 *   workload  a GAP kernel (bfs pr cc bc sssp tc) or a synthetic
 *             pattern (stream_triad scan_thrash hot_cold pointer_chase
 *             stencil2d mixed_phase dead_fill gather_zipf tree_search
 *             small_ws); default bfs
 *   scale     graph scale for the GAP kernels (default 18)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/cascade_lake.hh"
#include "util/logging.hh"
#include "graph/gap_kernels.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "stats/table.hh"
#include "workloads/synthetic.hh"

using namespace cachescope;

namespace {

std::shared_ptr<Workload>
makeWorkload(const std::string &name, unsigned scale)
{
    const std::map<std::string, GapKernel> gap = {
        {"bfs", GapKernel::Bfs}, {"pr", GapKernel::PageRank},
        {"cc", GapKernel::Cc},   {"bc", GapKernel::Bc},
        {"sssp", GapKernel::Sssp}, {"tc", GapKernel::Tc}};
    const std::map<std::string, SynthPattern> synth = {
        {"stream_triad", SynthPattern::StreamTriad},
        {"scan_thrash", SynthPattern::ScanThrash},
        {"hot_cold", SynthPattern::HotCold},
        {"pointer_chase", SynthPattern::PointerChase},
        {"stencil2d", SynthPattern::Stencil2D},
        {"mixed_phase", SynthPattern::MixedPhase},
        {"dead_fill", SynthPattern::DeadFill},
        {"gather_zipf", SynthPattern::GatherZipf},
        {"tree_search", SynthPattern::TreeSearch},
        {"small_ws", SynthPattern::SmallWs}};

    if (auto it = gap.find(name); it != gap.end()) {
        auto graph = std::make_shared<const CsrGraph>(
            makeKronecker(scale, 8, 42));
        return std::make_shared<GapWorkload>(
            it->second, "kron" + std::to_string(scale), graph,
            GapKernelParams{});
    }
    if (auto it = synth.find(name); it != synth.end()) {
        SynthParams p;
        p.mainBytes = 2ull << 20;
        p.hotBytes = 640ull << 10;
        return std::make_shared<SyntheticWorkload>("demo", it->second, p);
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bfs";
    const unsigned scale = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 18;

    auto workload = makeWorkload(name, scale);
    const SimConfig base = cascadeLakeConfig("lru", 500'000, 5'000'000);

    std::printf("Running %s under every policy "
                "(%llu measured instructions each)...\n",
                workload->name().c_str(),
                static_cast<unsigned long long>(base.measureInstructions));

    struct Row
    {
        std::string policy;
        SimResult result;
    };
    std::vector<Row> rows;
    for (const auto &policy :
         ReplacementPolicyFactory::availablePolicies()) {
        SimConfig cfg = base;
        cfg.hierarchy.llc.replacement = policy;
        rows.push_back({policy, runOne(*workload, cfg)});
        std::fprintf(stderr, "  %-8s done\n", policy.c_str());
    }
    rows.push_back({"belady", runBelady(*workload, base)});
    std::fprintf(stderr, "  belady   done\n");

    const double lru_ipc =
        std::find_if(rows.begin(), rows.end(), [](const Row &r) {
            return r.policy == "lru";
        })->result.ipc();

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.result.ipc() > b.result.ipc();
    });

    Table table({"policy", "ipc", "speedup_vs_lru", "llc_mpki",
                 "llc_miss_rate"});
    for (const auto &row : rows) {
        table.newRow();
        table.addCell(row.policy);
        table.addNumber(row.result.ipc(), 3);
        table.addNumber(row.result.ipc() / lru_ipc, 4);
        table.addNumber(row.result.mpkiLlc(), 2);
        table.addNumber(row.result.llc.demandMissRate(), 3);
    }
    table.printAscii(std::cout);
    return 0;
}
