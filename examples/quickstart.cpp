/**
 * @file
 * Quickstart: simulate one graph workload on the paper's Cascade Lake
 * configuration and print the cache-hierarchy statistics.
 *
 * Usage: quickstart [policy] [scale]
 *   policy  LLC replacement policy name (default "lru"; see
 *           ReplacementPolicyFactory::availablePolicies()).
 *   scale   log2 of the graph's vertex count (default 19).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/cascade_lake.hh"
#include "graph/gap_kernels.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace cachescope;

int
main(int argc, char **argv)
{
    const std::string policy = argc > 1 ? argv[1] : "lru";
    const unsigned scale = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 19;

    if (!ReplacementPolicyFactory::isRegistered(policy) &&
        policy != "belady") {
        std::fprintf(stderr, "unknown policy '%s'; available:",
                     policy.c_str());
        for (const auto &name :
             ReplacementPolicyFactory::availablePolicies()) {
            std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, " belady\n");
        return 1;
    }

    std::printf("Building kron%u graph (this is the workload input)...\n",
                scale);
    auto graph = std::make_shared<const CsrGraph>(
        makeKronecker(scale, /*avg_degree=*/8, /*seed=*/42));
    std::printf("  %u vertices, %llu directed edges\n", graph->numNodes(),
                static_cast<unsigned long long>(graph->numEdges()));

    GapKernelParams params;
    GapWorkload workload(GapKernel::Bfs, "kron" + std::to_string(scale),
                         graph, params);

    SimConfig config = cascadeLakeConfig(policy == "belady" ? "lru"
                                                            : policy);
    std::printf("Simulating %s with LLC policy '%s' "
                "(%llu warmup + %llu measured instructions)...\n",
                workload.name().c_str(), policy.c_str(),
                static_cast<unsigned long long>(config.warmupInstructions),
                static_cast<unsigned long long>(
                    config.measureInstructions));

    const SimResult result = policy == "belady"
        ? runBelady(workload, config)
        : runOne(workload, config);

    printSimResult(result, std::cout);
    if (!result.llcPolicyState.empty()) {
        std::printf("llc policy state: %s\n",
                    result.llcPolicyState.c_str());
    }
    return 0;
}
