/**
 * @file
 * Trace-tooling scenario: capture a workload's instruction stream to a
 * binary trace file (the ChampSim-style workflow), inspect it, then
 * replay it through the simulator and verify the replay reproduces the
 * live run exactly.
 *
 * Usage: trace_roundtrip [path] [records]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cascade_lake.hh"
#include "trace/profile.hh"
#include "trace/trace_io.hh"
#include "workloads/synthetic.hh"

using namespace cachescope;

namespace {

/** Forward records into a TraceWriter up to a budget. */
class BoundedCapture : public InstructionSink
{
  public:
    BoundedCapture(TraceWriter &writer, std::uint64_t budget)
        : writer(writer), budget(budget)
    {}

    void
    onInstruction(const TraceRecord &rec) override
    {
        writer.onInstruction(rec);
    }

    bool
    wantsMore() const override
    {
        return writer.recordsWritten() < budget;
    }

  private:
    TraceWriter &writer;
    std::uint64_t budget;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "/tmp/cachescope.trace";
    const std::uint64_t records = argc > 2
        ? std::strtoull(argv[2], nullptr, 10) : 4'000'000;

    SynthParams params;
    params.mainBytes = 4ull << 20;
    SyntheticWorkload workload("demo", SynthPattern::GatherZipf, params);

    // 1. Capture.
    std::printf("Capturing %llu records of %s to %s...\n",
                static_cast<unsigned long long>(records),
                workload.name().c_str(), path.c_str());
    {
        TraceWriter writer(path);
        BoundedCapture capture(writer, records);
        workload.run(capture);
        writer.onEnd();
    }

    // 2. Inspect.
    {
        TraceReader reader(path);
        CountingSink counts;
        PcProfiler profiler;
        TraceRecord rec;
        while (reader.next(rec)) {
            counts.onInstruction(rec);
            profiler.onInstruction(rec);
        }
        const auto summary = profiler.summarize();
        std::printf("Trace: %llu records (%llu loads, %llu stores, "
                    "%llu branches), %llu memory PCs\n",
                    static_cast<unsigned long long>(counts.total),
                    static_cast<unsigned long long>(counts.loads),
                    static_cast<unsigned long long>(counts.stores),
                    static_cast<unsigned long long>(counts.branches),
                    static_cast<unsigned long long>(
                        summary.distinctMemoryPcs));
    }

    // 3. Replay vs live. Windows are derived from the capture length
    // so both runs consume the same stream prefix even for short
    // captures.
    const SimConfig cfg = cascadeLakeConfig("drrip", records / 10,
                                            records / 2);
    Simulator live(cfg);
    workload.run(live);

    Simulator replayed(cfg);
    TraceReader reader(path);
    if (Status s = reader.replayInto(replayed); !s.ok()) {
        std::fprintf(stderr, "replay failed: %s\n", s.message().c_str());
        return 1;
    }

    const SimResult a = live.result();
    const SimResult b = replayed.result();
    std::printf("live:   cycles=%llu llc_misses=%llu ipc=%.4f\n",
                static_cast<unsigned long long>(a.core.cycles),
                static_cast<unsigned long long>(a.llc.demandMisses()),
                a.ipc());
    std::printf("replay: cycles=%llu llc_misses=%llu ipc=%.4f\n",
                static_cast<unsigned long long>(b.core.cycles),
                static_cast<unsigned long long>(b.llc.demandMisses()),
                b.ipc());
    if (a.core.cycles != b.core.cycles ||
        a.llc.demandMisses() != b.llc.demandMisses()) {
        std::printf("MISMATCH: replay diverged from the live run\n");
        return 1;
    }
    std::printf("Replay reproduces the live simulation exactly.\n");
    std::remove(path.c_str());
    return 0;
}
